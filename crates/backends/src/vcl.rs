//! VCL — an ACL-style object API for convolution.
//!
//! Arm Compute Library functions follow a `validate → configure → run`
//! lifecycle with tensor-info objects describing each operand; this module
//! mimics that shape. Internally the engine runs a direct convolution with
//! register tiling over output channels (a different implementation family
//! from both Orpheus's packed GEMM and VNNL's blocked-GEMM path, as real
//! vendor libraries differ).

use std::fmt;

/// Describes one NCHW tensor operand (shape only; VCL is f32-only here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorInfo {
    /// Batch size.
    pub n: usize,
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl TensorInfo {
    /// Creates a tensor descriptor.
    pub fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        TensorInfo { n, c, h, w }
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Convolution hyper-parameters (ACL's `PadStrideInfo` analog).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PadStrideInfo {
    /// Horizontal stride.
    pub stride_x: usize,
    /// Vertical stride.
    pub stride_y: usize,
    /// Left/right padding.
    pub pad_x: usize,
    /// Top/bottom padding.
    pub pad_y: usize,
}

/// Error from `validate`/`configure`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VclError(String);

impl fmt::Display for VclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vcl: {}", self.0)
    }
}

impl std::error::Error for VclError {}

/// A convolution function object, ACL-style: construct, `configure` once,
/// `run` many times.
#[derive(Debug, Default)]
pub struct VclConvolutionLayer {
    state: Option<Configured>,
}

#[derive(Debug)]
struct Configured {
    src: TensorInfo,
    weights_oihw: Vec<f32>,
    kernel_h: usize,
    kernel_w: usize,
    out_c: usize,
    info: PadStrideInfo,
    dst: TensorInfo,
}

impl VclConvolutionLayer {
    /// Creates an unconfigured layer.
    pub fn new() -> Self {
        VclConvolutionLayer::default()
    }

    /// Checks whether a configuration is valid without committing to it
    /// (ACL's static `validate`).
    ///
    /// # Errors
    ///
    /// Returns [`VclError`] describing the first invalid operand.
    pub fn validate(
        src: &TensorInfo,
        weights: &TensorInfo,
        dst: &TensorInfo,
        info: &PadStrideInfo,
    ) -> Result<(), VclError> {
        if info.stride_x == 0 || info.stride_y == 0 {
            return Err(VclError("zero stride".into()));
        }
        if weights.n == 0 || weights.c != src.c {
            return Err(VclError(format!(
                "weights expect {} input channels, source has {}",
                weights.c, src.c
            )));
        }
        let (oh, ow) = output_hw(src, weights, info);
        if dst.n != src.n || dst.c != weights.n || dst.h != oh || dst.w != ow {
            return Err(VclError(format!(
                "destination {dst:?} does not match computed [{}, {}, {oh}, {ow}]",
                src.n, weights.n
            )));
        }
        Ok(())
    }

    /// Configures the layer: shapes are frozen and weights are copied in.
    ///
    /// # Errors
    ///
    /// Returns [`VclError`] when validation fails or the weight buffer does
    /// not match its descriptor.
    pub fn configure(
        &mut self,
        src: TensorInfo,
        weights_info: TensorInfo,
        weights_oihw: &[f32],
        dst: TensorInfo,
        info: PadStrideInfo,
    ) -> Result<(), VclError> {
        Self::validate(&src, &weights_info, &dst, &info)?;
        if weights_oihw.len() != weights_info.len() {
            return Err(VclError(format!(
                "weight buffer has {} values, descriptor implies {}",
                weights_oihw.len(),
                weights_info.len()
            )));
        }
        self.state = Some(Configured {
            src,
            weights_oihw: weights_oihw.to_vec(),
            kernel_h: weights_info.h,
            kernel_w: weights_info.w,
            out_c: weights_info.n,
            info,
            dst,
        });
        Ok(())
    }

    /// Output tensor descriptor after configuration.
    pub fn output_info(&self) -> Option<TensorInfo> {
        self.state.as_ref().map(|s| s.dst)
    }

    /// Runs the convolution.
    ///
    /// # Errors
    ///
    /// Returns [`VclError`] if the layer is unconfigured or buffers are
    /// undersized.
    pub fn run(&self, src: &[f32], dst: &mut [f32]) -> Result<(), VclError> {
        let s = self
            .state
            .as_ref()
            .ok_or_else(|| VclError("run before configure".into()))?;
        if src.len() < s.src.len() || dst.len() < s.dst.len() {
            return Err(VclError("operand buffer too small".into()));
        }
        // Direct convolution, register-tiled over output channels.
        const TILE: usize = 4;
        let (n, ci, ih, iw) = (s.src.n, s.src.c, s.src.h, s.src.w);
        let (co, oh, ow) = (s.out_c, s.dst.h, s.dst.w);
        debug_assert_eq!(co, s.dst.c);
        let (kh, kw) = (s.kernel_h, s.kernel_w);
        for img in 0..n {
            let src_img = &src[img * ci * ih * iw..][..ci * ih * iw];
            let dst_img = &mut dst[img * co * oh * ow..][..co * oh * ow];
            for oc0 in (0..co).step_by(TILE) {
                let tc = TILE.min(co - oc0);
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = [0.0f32; TILE];
                        for ic in 0..ci {
                            let plane = &src_img[ic * ih * iw..][..ih * iw];
                            for ky in 0..kh {
                                let iy =
                                    (oy * s.info.stride_y + ky) as isize - s.info.pad_y as isize;
                                if iy < 0 || iy >= ih as isize {
                                    continue;
                                }
                                for kx in 0..kw {
                                    let ix = (ox * s.info.stride_x + kx) as isize
                                        - s.info.pad_x as isize;
                                    if ix < 0 || ix >= iw as isize {
                                        continue;
                                    }
                                    let v = plane[iy as usize * iw + ix as usize];
                                    for (t, a) in acc.iter_mut().take(tc).enumerate() {
                                        let widx = (((oc0 + t) * ci + ic) * kh + ky) * kw + kx;
                                        *a += v * s.weights_oihw[widx];
                                    }
                                }
                            }
                        }
                        for (t, &a) in acc.iter().take(tc).enumerate() {
                            dst_img[(oc0 + t) * oh * ow + oy * ow + ox] = a;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Output spatial dims for a source/weight/info triple.
pub fn output_hw(src: &TensorInfo, weights: &TensorInfo, info: &PadStrideInfo) -> (usize, usize) {
    let oh = (src.h + 2 * info.pad_y).saturating_sub(weights.h) / info.stride_y + 1;
    let ow = (src.w + 2 * info.pad_x).saturating_sub(weights.w) / info.stride_x + 1;
    (oh, ow)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stride1() -> PadStrideInfo {
        PadStrideInfo {
            stride_x: 1,
            stride_y: 1,
            pad_x: 0,
            pad_y: 0,
        }
    }

    #[test]
    fn configure_then_run_identity() {
        let mut layer = VclConvolutionLayer::new();
        layer
            .configure(
                TensorInfo::new(1, 1, 2, 2),
                TensorInfo::new(1, 1, 1, 1),
                &[3.0],
                TensorInfo::new(1, 1, 2, 2),
                stride1(),
            )
            .unwrap();
        let mut dst = [0.0; 4];
        layer.run(&[1.0, 2.0, 3.0, 4.0], &mut dst).unwrap();
        assert_eq!(dst, [3.0, 6.0, 9.0, 12.0]);
    }

    #[test]
    fn run_before_configure_errors() {
        let layer = VclConvolutionLayer::new();
        let mut dst = [0.0; 1];
        assert!(layer.run(&[0.0], &mut dst).is_err());
    }

    #[test]
    fn validate_rejects_channel_mismatch() {
        let err = VclConvolutionLayer::validate(
            &TensorInfo::new(1, 3, 4, 4),
            &TensorInfo::new(8, 2, 3, 3), // expects 2 channels, src has 3
            &TensorInfo::new(1, 8, 2, 2),
            &stride1(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("channels"));
    }

    #[test]
    fn validate_rejects_wrong_destination() {
        let err = VclConvolutionLayer::validate(
            &TensorInfo::new(1, 1, 4, 4),
            &TensorInfo::new(2, 1, 3, 3),
            &TensorInfo::new(1, 2, 4, 4), // should be 2x2
            &stride1(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("destination"));
    }

    #[test]
    fn ragged_channel_tile() {
        // 5 output channels exercises the partial TILE=4 tile.
        let mut layer = VclConvolutionLayer::new();
        let weights: Vec<f32> = (0..5).map(|i| i as f32 + 1.0).collect();
        layer
            .configure(
                TensorInfo::new(1, 1, 1, 1),
                TensorInfo::new(5, 1, 1, 1),
                &weights,
                TensorInfo::new(1, 5, 1, 1),
                stride1(),
            )
            .unwrap();
        let mut dst = [0.0; 5];
        layer.run(&[2.0], &mut dst).unwrap();
        assert_eq!(dst, [2.0, 4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn output_info_reflects_configuration() {
        let mut layer = VclConvolutionLayer::new();
        assert!(layer.output_info().is_none());
        layer
            .configure(
                TensorInfo::new(1, 1, 5, 5),
                TensorInfo::new(2, 1, 3, 3),
                &[0.0; 18],
                TensorInfo::new(1, 2, 3, 3),
                stride1(),
            )
            .unwrap();
        assert_eq!(layer.output_info(), Some(TensorInfo::new(1, 2, 3, 3)));
    }
}
