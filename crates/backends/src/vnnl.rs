//! VNNL — a DNNL-style C API for convolution and inner product.
//!
//! Everything here follows C library conventions on purpose: plain-old-data
//! descriptor structs, integer status codes, create/execute/destroy
//! lifecycle around an opaque primitive handle. Internally the engine runs
//! im2col + blocked GEMM (a plausible vendor implementation choice, distinct
//! from Orpheus's packed GEMM).

use orpheus_gemm::{gemm, im2col, GemmKernel, Im2colParams};

/// Status code returned by every VNNL entry point.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VnnlStatus {
    /// The call succeeded.
    Success = 0,
    /// A descriptor field is invalid (zero extent, bad group count...).
    BadDescriptor = 1,
    /// A buffer is too small for the descriptor's geometry.
    BadBuffer = 2,
    /// The handle has already been destroyed.
    DeadHandle = 3,
}

/// Convolution descriptor (POD, C layout).
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VnnlConvDesc {
    /// Input channels.
    pub in_channels: u32,
    /// Output channels.
    pub out_channels: u32,
    /// Kernel height.
    pub kernel_h: u32,
    /// Kernel width.
    pub kernel_w: u32,
    /// Vertical stride.
    pub stride_h: u32,
    /// Horizontal stride.
    pub stride_w: u32,
    /// Padding (top/bottom).
    pub pad_h: u32,
    /// Padding (left/right).
    pub pad_w: u32,
    /// Channel groups.
    pub groups: u32,
}

impl VnnlConvDesc {
    fn valid(&self) -> bool {
        let nz = [
            self.in_channels,
            self.out_channels,
            self.kernel_h,
            self.kernel_w,
            self.stride_h,
            self.stride_w,
            self.groups,
        ];
        nz.iter().all(|&x| x > 0)
            && self.in_channels.is_multiple_of(self.groups)
            && self.out_channels.is_multiple_of(self.groups)
    }
}

/// Opaque convolution primitive. Holds the descriptor and a private copy of
/// the weights (vendor libraries own their packed weights).
#[derive(Debug)]
pub struct VnnlConvPrimitive {
    desc: VnnlConvDesc,
    weights: Vec<f32>,
    alive: bool,
}

/// Creates a convolution primitive.
///
/// `weights` must hold `out_channels * in_channels/groups * kh * kw` values
/// in OIHW order. Returns the primitive via the `out` parameter, C-style.
pub fn vnnl_conv_create(
    desc: &VnnlConvDesc,
    weights: &[f32],
    out: &mut Option<VnnlConvPrimitive>,
) -> VnnlStatus {
    if !desc.valid() {
        return VnnlStatus::BadDescriptor;
    }
    let expected =
        (desc.out_channels * (desc.in_channels / desc.groups) * desc.kernel_h * desc.kernel_w)
            as usize;
    if weights.len() != expected {
        return VnnlStatus::BadBuffer;
    }
    *out = Some(VnnlConvPrimitive {
        desc: *desc,
        weights: weights.to_vec(),
        alive: true,
    });
    VnnlStatus::Success
}

/// Output spatial size for an input of `h x w`.
pub fn vnnl_conv_output_dims(desc: &VnnlConvDesc, h: u32, w: u32) -> (u32, u32) {
    let oh = (h + 2 * desc.pad_h).saturating_sub(desc.kernel_h) / desc.stride_h + 1;
    let ow = (w + 2 * desc.pad_w).saturating_sub(desc.kernel_w) / desc.stride_w + 1;
    (oh, ow)
}

/// Executes the primitive on one NCHW image batch.
///
/// `src` is `[n, in_c, h, w]` flattened; `dst` must hold
/// `n * out_c * oh * ow` values and is fully overwritten.
pub fn vnnl_conv_execute(
    prim: &VnnlConvPrimitive,
    n: u32,
    h: u32,
    w: u32,
    src: &[f32],
    dst: &mut [f32],
) -> VnnlStatus {
    if !prim.alive {
        return VnnlStatus::DeadHandle;
    }
    let d = &prim.desc;
    let (oh, ow) = vnnl_conv_output_dims(d, h, w);
    let (n, h, w) = (n as usize, h as usize, w as usize);
    let (ci, co, g) = (
        d.in_channels as usize,
        d.out_channels as usize,
        d.groups as usize,
    );
    let (oh, ow) = (oh as usize, ow as usize);
    if src.len() < n * ci * h * w || dst.len() < n * co * oh * ow {
        return VnnlStatus::BadBuffer;
    }
    let cig = ci / g;
    let cog = co / g;
    let params = Im2colParams {
        channels: cig,
        height: h,
        width: w,
        kernel_h: d.kernel_h as usize,
        kernel_w: d.kernel_w as usize,
        stride_h: d.stride_h as usize,
        stride_w: d.stride_w as usize,
        pad_h: d.pad_h as usize,
        pad_w: d.pad_w as usize,
        dilation_h: 1,
        dilation_w: 1,
    };
    let k = params.matrix_rows();
    let cols = oh * ow;
    let mut col_buf = vec![0.0f32; k * cols];
    for img in 0..n {
        for grp in 0..g {
            let src_group = &src[img * ci * h * w + grp * cig * h * w..][..cig * h * w];
            im2col(&params, src_group, &mut col_buf);
            let w_group = &prim.weights[grp * cog * k..(grp + 1) * cog * k];
            let dst_group = &mut dst[img * co * oh * ow + grp * cog * cols..][..cog * cols];
            gemm(
                GemmKernel::Blocked,
                cog,
                cols,
                k,
                w_group,
                k,
                &col_buf,
                cols,
                dst_group,
                cols,
                0.0,
            );
        }
    }
    VnnlStatus::Success
}

/// Destroys a primitive. Further executions return [`VnnlStatus::DeadHandle`].
pub fn vnnl_conv_destroy(prim: &mut VnnlConvPrimitive) -> VnnlStatus {
    if !prim.alive {
        return VnnlStatus::DeadHandle;
    }
    prim.alive = false;
    prim.weights = Vec::new();
    VnnlStatus::Success
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc_1x1(c: u32) -> VnnlConvDesc {
        VnnlConvDesc {
            in_channels: c,
            out_channels: c,
            kernel_h: 1,
            kernel_w: 1,
            stride_h: 1,
            stride_w: 1,
            pad_h: 0,
            pad_w: 0,
            groups: 1,
        }
    }

    #[test]
    fn create_execute_destroy_lifecycle() {
        let desc = desc_1x1(1);
        let mut prim = None;
        assert_eq!(
            vnnl_conv_create(&desc, &[2.0], &mut prim),
            VnnlStatus::Success
        );
        let mut prim = prim.unwrap();
        let src = [1.0, 2.0, 3.0, 4.0];
        let mut dst = [0.0; 4];
        assert_eq!(
            vnnl_conv_execute(&prim, 1, 2, 2, &src, &mut dst),
            VnnlStatus::Success
        );
        assert_eq!(dst, [2.0, 4.0, 6.0, 8.0]);
        assert_eq!(vnnl_conv_destroy(&mut prim), VnnlStatus::Success);
        assert_eq!(
            vnnl_conv_execute(&prim, 1, 2, 2, &src, &mut dst),
            VnnlStatus::DeadHandle
        );
        assert_eq!(vnnl_conv_destroy(&mut prim), VnnlStatus::DeadHandle);
    }

    #[test]
    fn rejects_bad_descriptor() {
        let mut desc = desc_1x1(4);
        desc.groups = 3; // 4 % 3 != 0
        let mut prim = None;
        assert_eq!(
            vnnl_conv_create(&desc, &[0.0; 16], &mut prim),
            VnnlStatus::BadDescriptor
        );
        assert!(prim.is_none());
    }

    #[test]
    fn rejects_wrong_weight_count() {
        let desc = desc_1x1(2);
        let mut prim = None;
        assert_eq!(
            vnnl_conv_create(&desc, &[0.0; 3], &mut prim),
            VnnlStatus::BadBuffer
        );
    }

    #[test]
    fn rejects_undersized_buffers() {
        let desc = desc_1x1(1);
        let mut prim = None;
        vnnl_conv_create(&desc, &[1.0], &mut prim);
        let prim = prim.unwrap();
        let mut dst = [0.0; 1];
        assert_eq!(
            vnnl_conv_execute(&prim, 1, 2, 2, &[0.0; 4], &mut dst),
            VnnlStatus::BadBuffer
        );
    }

    #[test]
    fn output_dims_formula() {
        let desc = VnnlConvDesc {
            in_channels: 3,
            out_channels: 8,
            kernel_h: 3,
            kernel_w: 3,
            stride_h: 2,
            stride_w: 2,
            pad_h: 1,
            pad_w: 1,
            groups: 1,
        };
        assert_eq!(vnnl_conv_output_dims(&desc, 224, 224), (112, 112));
    }
}
