//! Simulated third-party vendor backends.
//!
//! The paper advertises "easy integration of third party backends like Intel
//! DNNL or Arm Compute Library". Those libraries cannot ship inside this
//! reproduction, so this crate provides two *simulated vendor libraries*
//! whose API styles deliberately mimic the real ones:
//!
//! * [`vnnl`] — "Vendor Neural Network Library", a DNNL-style C API:
//!   descriptor structs, opaque primitive handles, status codes.
//! * [`vcl`] — "Vendor Compute Library", an ACL-style object API:
//!   configure-then-run lifecycle with explicit validation.
//!
//! Both compute real convolutions (they are validated against the Orpheus
//! reference implementation in this crate's tests), but through foreign
//! calling conventions — so the Orpheus core's third-party integration layer
//! has something genuinely third-party-shaped to wrap. The safe wrappers
//! ([`VnnlConv`], [`VclConv`]) are what the core's `third_party` layer
//! module adapts into `Layer` implementations.

#![forbid(unsafe_code)]

pub mod vcl;
pub mod vnnl;

mod wrappers;

pub use wrappers::{BackendError, VclConv, VnnlConv};
