//! Safe Orpheus-side wrappers around the vendor APIs.
//!
//! These are the artifacts the paper's "integration of third party backends"
//! workflow produces: thin adapters that translate Orpheus tensors and
//! parameters into vendor calling conventions, turning status codes into
//! errors. The core crate lifts them into `Layer` implementations.

use std::error::Error;
use std::fmt;

use orpheus_ops::conv::Conv2dParams;
use orpheus_tensor::Tensor;

use crate::vcl::{PadStrideInfo, TensorInfo, VclConvolutionLayer};
use crate::vnnl::{
    vnnl_conv_create, vnnl_conv_execute, vnnl_conv_output_dims, VnnlConvDesc, VnnlConvPrimitive,
    VnnlStatus,
};

/// Error adapting or executing a vendor backend.
#[derive(Debug)]
pub enum BackendError {
    /// The vendor library rejected the configuration.
    Rejected(String),
    /// The configuration is outside the vendor library's coverage
    /// (e.g. dilated convolution on VNNL).
    Unsupported(String),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Rejected(msg) => write!(f, "vendor backend rejected config: {msg}"),
            BackendError::Unsupported(msg) => write!(f, "vendor backend unsupported: {msg}"),
        }
    }
}

impl Error for BackendError {}

/// A VNNL-backed convolution.
#[derive(Debug)]
pub struct VnnlConv {
    primitive: VnnlConvPrimitive,
    params: Conv2dParams,
}

impl VnnlConv {
    /// Creates the vendor primitive from Orpheus-side parameters and weights.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Unsupported`] for dilated convolutions (VNNL
    /// does not expose dilation) and [`BackendError::Rejected`] when the
    /// vendor call fails.
    pub fn new(params: Conv2dParams, weight: &Tensor) -> Result<Self, BackendError> {
        if params.dilation_h != 1 || params.dilation_w != 1 {
            return Err(BackendError::Unsupported("vnnl has no dilation".into()));
        }
        let desc = VnnlConvDesc {
            in_channels: params.in_channels as u32,
            out_channels: params.out_channels as u32,
            kernel_h: params.kernel_h as u32,
            kernel_w: params.kernel_w as u32,
            stride_h: params.stride_h as u32,
            stride_w: params.stride_w as u32,
            pad_h: params.pad_h as u32,
            pad_w: params.pad_w as u32,
            groups: params.groups as u32,
        };
        let mut primitive = None;
        match vnnl_conv_create(&desc, weight.as_slice(), &mut primitive) {
            VnnlStatus::Success => Ok(VnnlConv {
                primitive: primitive.expect("success implies primitive"),
                params,
            }),
            status => Err(BackendError::Rejected(format!("{status:?}"))),
        }
    }

    /// The Orpheus-side parameters.
    pub fn params(&self) -> &Conv2dParams {
        &self.params
    }

    /// Runs the convolution into a pre-sized output.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Rejected`] on vendor failure.
    pub fn run_into(&self, input: &Tensor, output: &mut Tensor) -> Result<(), BackendError> {
        let dims = input.dims();
        let (n, h, w) = (dims[0] as u32, dims[2] as u32, dims[3] as u32);
        match vnnl_conv_execute(
            &self.primitive,
            n,
            h,
            w,
            input.as_slice(),
            output.as_mut_slice(),
        ) {
            VnnlStatus::Success => Ok(()),
            status => Err(BackendError::Rejected(format!("{status:?}"))),
        }
    }

    /// Output dims for an input shape.
    pub fn output_dims(&self, dims: &[usize]) -> [usize; 4] {
        let desc = VnnlConvDesc {
            in_channels: self.params.in_channels as u32,
            out_channels: self.params.out_channels as u32,
            kernel_h: self.params.kernel_h as u32,
            kernel_w: self.params.kernel_w as u32,
            stride_h: self.params.stride_h as u32,
            stride_w: self.params.stride_w as u32,
            pad_h: self.params.pad_h as u32,
            pad_w: self.params.pad_w as u32,
            groups: self.params.groups as u32,
        };
        let (oh, ow) = vnnl_conv_output_dims(&desc, dims[2] as u32, dims[3] as u32);
        [dims[0], self.params.out_channels, oh as usize, ow as usize]
    }
}

/// A VCL-backed convolution.
#[derive(Debug)]
pub struct VclConv {
    layer: VclConvolutionLayer,
    params: Conv2dParams,
    configured_input: [usize; 4],
}

impl VclConv {
    /// Configures the vendor function object for a fixed input shape (VCL,
    /// like ACL, freezes shapes at configure time).
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Unsupported`] for grouped or dilated
    /// convolutions, [`BackendError::Rejected`] when `configure` fails.
    pub fn new(
        params: Conv2dParams,
        weight: &Tensor,
        input_dims: [usize; 4],
    ) -> Result<Self, BackendError> {
        if params.groups != 1 {
            return Err(BackendError::Unsupported(
                "vcl wrapper is group-1 only".into(),
            ));
        }
        if params.dilation_h != 1 || params.dilation_w != 1 {
            return Err(BackendError::Unsupported("vcl has no dilation".into()));
        }
        let src = TensorInfo::new(input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
        let winfo = TensorInfo::new(
            params.out_channels,
            params.in_channels,
            params.kernel_h,
            params.kernel_w,
        );
        let info = PadStrideInfo {
            stride_x: params.stride_w,
            stride_y: params.stride_h,
            pad_x: params.pad_w,
            pad_y: params.pad_h,
        };
        let dst = TensorInfo::new(
            input_dims[0],
            params.out_channels,
            params.out_h(input_dims[2]),
            params.out_w(input_dims[3]),
        );
        let mut layer = VclConvolutionLayer::new();
        layer
            .configure(src, winfo, weight.as_slice(), dst, info)
            .map_err(|e| BackendError::Rejected(e.to_string()))?;
        Ok(VclConv {
            layer,
            params,
            configured_input: input_dims,
        })
    }

    /// The Orpheus-side parameters.
    pub fn params(&self) -> &Conv2dParams {
        &self.params
    }

    /// The input shape frozen at configure time.
    pub fn configured_input(&self) -> [usize; 4] {
        self.configured_input
    }

    /// Runs the convolution into a pre-sized output.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Rejected`] if the input shape differs from the
    /// configured one or the vendor run fails.
    pub fn run_into(&self, input: &Tensor, output: &mut Tensor) -> Result<(), BackendError> {
        if input.dims() != self.configured_input {
            return Err(BackendError::Rejected(format!(
                "vcl configured for {:?}, got {:?}",
                self.configured_input,
                input.dims()
            )));
        }
        self.layer
            .run(input.as_slice(), output.as_mut_slice())
            .map_err(|e| BackendError::Rejected(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orpheus_ops::conv::{Conv2d, ConvAlgorithm};
    use orpheus_tensor::allclose;
    use orpheus_threads::ThreadPool;

    fn pseudo(n: usize, seed: u64) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let x = (i as u64 ^ seed).wrapping_mul(0x9e3779b97f4a7c15);
                ((x >> 34) as f32 / (1u64 << 30) as f32) - 1.0
            })
            .collect()
    }

    fn reference(params: Conv2dParams, input: &Tensor, weight: &Tensor) -> Tensor {
        Conv2d::new(params, weight.clone(), None, ConvAlgorithm::Direct)
            .unwrap()
            .run(input, &ThreadPool::single())
            .unwrap()
    }

    #[test]
    fn vnnl_matches_orpheus_reference() {
        let params = Conv2dParams::square(3, 8, 3)
            .with_padding(1, 1)
            .with_stride(2, 2);
        let input = Tensor::from_vec(pseudo(3 * 9 * 9, 1), &[1, 3, 9, 9]).unwrap();
        let wd = params.weight_dims();
        let weight = Tensor::from_vec(pseudo(wd.iter().product(), 2), &wd).unwrap();
        let want = reference(params, &input, &weight);
        let conv = VnnlConv::new(params, &weight).unwrap();
        let mut got = Tensor::zeros(&conv.output_dims(input.dims()));
        conv.run_into(&input, &mut got).unwrap();
        let r = allclose(&got, &want, 1e-4, 1e-5);
        assert!(r.ok, "vnnl mismatch: {r:?}");
    }

    #[test]
    fn vnnl_grouped_matches_reference() {
        let params = Conv2dParams::square(4, 6, 3)
            .with_groups(2)
            .with_padding(1, 1);
        let input = Tensor::from_vec(pseudo(4 * 36, 3), &[1, 4, 6, 6]).unwrap();
        let wd = params.weight_dims();
        let weight = Tensor::from_vec(pseudo(wd.iter().product(), 4), &wd).unwrap();
        let want = reference(params, &input, &weight);
        let conv = VnnlConv::new(params, &weight).unwrap();
        let mut got = Tensor::zeros(&conv.output_dims(input.dims()));
        conv.run_into(&input, &mut got).unwrap();
        assert!(allclose(&got, &want, 1e-4, 1e-5).ok);
    }

    #[test]
    fn vnnl_rejects_dilation() {
        let params = Conv2dParams::square(1, 1, 3).with_dilation(2, 2);
        let weight = Tensor::zeros(&[1, 1, 3, 3]);
        assert!(matches!(
            VnnlConv::new(params, &weight),
            Err(BackendError::Unsupported(_))
        ));
    }

    #[test]
    fn vcl_matches_orpheus_reference() {
        let params = Conv2dParams::square(2, 5, 3).with_padding(1, 1);
        let dims = [1, 2, 7, 7];
        let input = Tensor::from_vec(pseudo(2 * 49, 5), &dims).unwrap();
        let wd = params.weight_dims();
        let weight = Tensor::from_vec(pseudo(wd.iter().product(), 6), &wd).unwrap();
        let want = reference(params, &input, &weight);
        let conv = VclConv::new(params, &weight, dims).unwrap();
        let mut got = Tensor::zeros(want.dims());
        conv.run_into(&input, &mut got).unwrap();
        let r = allclose(&got, &want, 1e-4, 1e-5);
        assert!(r.ok, "vcl mismatch: {r:?}");
    }

    #[test]
    fn vcl_rejects_shape_change_after_configure() {
        let params = Conv2dParams::square(1, 1, 1);
        let weight = Tensor::ones(&[1, 1, 1, 1]);
        let conv = VclConv::new(params, &weight, [1, 1, 4, 4]).unwrap();
        let wrong = Tensor::zeros(&[1, 1, 5, 5]);
        let mut out = Tensor::zeros(&[1, 1, 5, 5]);
        assert!(conv.run_into(&wrong, &mut out).is_err());
    }

    #[test]
    fn vcl_rejects_groups() {
        let params = Conv2dParams::depthwise(4, 3);
        let weight = Tensor::zeros(&[4, 1, 3, 3]);
        assert!(matches!(
            VclConv::new(params, &weight, [1, 4, 8, 8]),
            Err(BackendError::Unsupported(_))
        ));
    }
}
