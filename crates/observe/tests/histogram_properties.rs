//! Property-based tests for the log-linear latency histogram.
//!
//! The quantile queries feed `orpheus-cli bench` regression gating, so the
//! edge cases matter: an empty histogram must answer harmlessly, a single
//! sample must be reported exactly, and merging partial histograms (the
//! per-round shards `bench` produces) must be order-independent — the
//! aggregate may not depend on which worker's shard merged first.

use orpheus_observe::Histogram;
use proptest::prelude::*;

const QS: [f64; 3] = [0.50, 0.90, 0.99];

fn filled(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

#[test]
fn empty_histogram_answers_zero_for_every_quantile() {
    let h = Histogram::new();
    for q in QS {
        assert_eq!(h.percentile(q), 0);
    }
    assert_eq!(h.count(), 0);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), 0);
    assert_eq!(h.mean(), 0.0);
}

#[test]
fn merging_an_empty_histogram_is_identity() {
    let mut h = filled(&[5, 500, 50_000]);
    let before: Vec<u64> = QS.iter().map(|&q| h.percentile(q)).collect();
    h.merge(&Histogram::new());
    let after: Vec<u64> = QS.iter().map(|&q| h.percentile(q)).collect();
    assert_eq!(before, after);
    assert_eq!(h.count(), 3);
    assert_eq!(h.min(), 5);
    assert_eq!(h.max(), 50_000);

    // And the other direction: empty absorbing a populated histogram.
    let mut e = Histogram::new();
    e.merge(&filled(&[5, 500, 50_000]));
    assert_eq!(e.count(), 3);
    assert_eq!(e.min(), 5);
    assert_eq!(e.max(), 50_000);
}

proptest! {
    /// A single sample is every quantile, exactly (clamping to [min, max]
    /// collapses the bucket back to the value).
    #[test]
    fn single_sample_is_every_quantile(v in any::<u64>()) {
        let h = filled(&[v]);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(h.percentile(q), v);
        }
        prop_assert_eq!(h.min(), v);
        prop_assert_eq!(h.max(), v);
        prop_assert_eq!(h.count(), 1);
    }

    /// Quantiles always land inside the observed [min, max] range and are
    /// monotone in q.
    #[test]
    fn quantiles_bounded_and_monotone(values in prop::collection::vec(0u64..1_000_000_000, 1..200)) {
        let h = filled(&values);
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        let mut prev = 0u64;
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let p = h.percentile(q);
            prop_assert!(p >= lo && p <= hi, "p{q} = {p} outside [{lo}, {hi}]");
            prop_assert!(p >= prev, "quantiles regressed at q={q}");
            prev = p;
        }
    }

    /// merge() is order-independent: a⊕b and b⊕a agree on every statistic,
    /// and both equal recording all samples into one histogram.
    #[test]
    fn merge_is_order_independent(
        a in prop::collection::vec(0u64..10_000_000, 0..100),
        b in prop::collection::vec(0u64..10_000_000, 0..100),
    ) {
        let mut ab = filled(&a);
        ab.merge(&filled(&b));
        let mut ba = filled(&b);
        ba.merge(&filled(&a));
        let mut all: Vec<u64> = a.iter().chain(&b).copied().collect();
        all.sort_unstable();
        let one = filled(&all);

        prop_assert_eq!(ab.count(), ba.count());
        prop_assert_eq!(ab.min(), ba.min());
        prop_assert_eq!(ab.max(), ba.max());
        prop_assert_eq!(ab.mean(), ba.mean());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(ab.percentile(q), ba.percentile(q));
            prop_assert_eq!(ab.percentile(q), one.percentile(q));
        }
    }

    /// Merging three shards is associative regardless of grouping.
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(0u64..10_000_000, 0..50),
        b in prop::collection::vec(0u64..10_000_000, 0..50),
        c in prop::collection::vec(0u64..10_000_000, 0..50),
    ) {
        // (a ⊕ b) ⊕ c
        let mut left = filled(&a);
        left.merge(&filled(&b));
        left.merge(&filled(&c));
        // a ⊕ (b ⊕ c)
        let mut bc = filled(&b);
        bc.merge(&filled(&c));
        let mut right = filled(&a);
        right.merge(&bc);

        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.min(), right.min());
        prop_assert_eq!(left.max(), right.max());
        for q in QS {
            prop_assert_eq!(left.percentile(q), right.percentile(q));
        }
    }
}
