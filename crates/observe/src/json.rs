//! Minimal JSON string escaping shared by every exporter in the workspace.
//!
//! The Chrome-trace and JSON-lines writers emit hand-rolled JSON (the
//! workspace carries no serde), so they all funnel string data through this
//! one escaper. It covers the full set RFC 8259 requires: backslash, quote,
//! and every ASCII control character (named escapes where JSON has them,
//! `\u00XX` otherwise).

/// Appends `s` to `out` with JSON string escaping (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Returns `s` with JSON string escaping applied (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_plain_text_through() {
        assert_eq!(escape("conv_3/weights"), "conv_3/weights");
    }

    #[test]
    fn escapes_quotes_and_backslashes() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
    }

    #[test]
    fn escapes_named_control_characters() {
        assert_eq!(escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
        assert_eq!(escape("\u{08}\u{0c}"), "\\b\\f");
    }

    #[test]
    fn escapes_remaining_control_characters_as_unicode() {
        assert_eq!(escape("\u{01}\u{1f}"), "\\u0001\\u001f");
    }

    #[test]
    fn keeps_non_ascii_intact() {
        assert_eq!(escape("café λ…"), "café λ…");
    }
}
