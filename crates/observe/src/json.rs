//! Minimal JSON support shared by every exporter in the workspace.
//!
//! The Chrome-trace and JSON-lines writers emit hand-rolled JSON (the
//! workspace carries no serde), so they all funnel string data through this
//! one escaper. It covers the full set RFC 8259 requires: backslash, quote,
//! and every ASCII control character (named escapes where JSON has them,
//! `\u00XX` otherwise).
//!
//! The module also carries [`JsonValue`], a small recursive-descent JSON
//! *reader* — enough for tools that must consume the workspace's own JSON
//! artifacts back (notably `orpheus-cli bench --compare`, which reads a
//! committed `BENCH_*.json` baseline). It parses the full RFC 8259 grammar
//! with a bounded nesting depth; numbers come back as `f64` (exact for the
//! integer ranges these artifacts use).

/// Appends `s` to `out` with JSON string escaping (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Returns `s` with JSON string escaping applied (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

/// Maximum array/object nesting [`JsonValue::parse`] accepts.
const MAX_DEPTH: usize = 64;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order preserved, lookup is linear.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error, with
    /// its byte offset.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number representable
    /// as one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected {:?} at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| format!("bad number {text:?} at byte {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number {text:?} at byte {start}"));
        }
        Ok(JsonValue::Num(n))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogates (only reachable via \u) map to the
                            // replacement character; the workspace's own
                            // artifacts never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control character at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_plain_text_through() {
        assert_eq!(escape("conv_3/weights"), "conv_3/weights");
    }

    #[test]
    fn escapes_quotes_and_backslashes() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
    }

    #[test]
    fn escapes_named_control_characters() {
        assert_eq!(escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
        assert_eq!(escape("\u{08}\u{0c}"), "\\b\\f");
    }

    #[test]
    fn escapes_remaining_control_characters_as_unicode() {
        assert_eq!(escape("\u{01}\u{1f}"), "\\u0001\\u001f");
    }

    #[test]
    fn keeps_non_ascii_intact() {
        assert_eq!(escape("café λ…"), "café λ…");
    }
}
