//! A log-linear latency histogram.
//!
//! Values (typically microseconds) are bucketed into power-of-two octaves,
//! each split into 16 linear sub-buckets, so relative error is bounded at
//! ~6% across the full `u64` range while storage stays a fixed, small array.
//! This is the same scheme HdrHistogram and OpenTelemetry's exponential
//! histograms use, reduced to the operations the CLI needs: record, merge,
//! and percentile queries.

/// Sub-buckets per octave. Must be a power of two.
const SUBS: u64 = 16;
/// log2(SUBS).
const SUB_BITS: u32 = 4;
/// One bucket per value below `SUBS`, then 16 per octave up to 2^63.
const NUM_BUCKETS: usize = (SUBS + (64 - SUB_BITS as u64) * SUBS) as usize;

/// A mergeable log-linear histogram over `u64` values.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value < SUBS {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let octave = msb - SUB_BITS + 1;
        let sub = (value >> (msb - SUB_BITS)) & (SUBS - 1);
        (octave as u64 * SUBS + sub) as usize
    }

    /// Lowest value that maps to bucket `index`.
    fn bucket_low(index: usize) -> u64 {
        let index = index as u64;
        if index < SUBS {
            return index;
        }
        let octave = (index / SUBS) as u32;
        let sub = index % SUBS;
        (SUBS + sub) << (octave - 1)
    }

    /// Midpoint of bucket `index`, used as the representative value for
    /// percentile queries.
    fn bucket_mid(index: usize) -> u64 {
        let low = Self::bucket_low(index);
        let width = if (index as u64) < SUBS {
            1
        } else {
            1u64 << ((index as u64 / SUBS) as u32 - 1)
        };
        low + width / 2
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]` (0.5 = median), or 0 when empty.
    ///
    /// Returns the representative (midpoint) value of the bucket containing
    /// the `ceil(q * count)`-th observation, clamped to the observed
    /// `[min, max]` so extreme quantiles never invent values outside the
    /// recorded range.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Adds every observation of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotonic() {
        let mut prev = 0;
        for v in 0..100_000u64 {
            let idx = Histogram::bucket_index(v);
            assert!(idx >= prev, "bucket index regressed at {v}");
            assert!(Histogram::bucket_low(idx) <= v);
            prev = idx;
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(1.0), 15);
    }

    #[test]
    fn percentiles_on_uniform_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.50) as f64;
        let p90 = h.percentile(0.90) as f64;
        let p99 = h.percentile(0.99) as f64;
        // Log-linear buckets bound relative error at 1/16.
        assert!((p50 - 500.0).abs() / 500.0 < 0.07, "p50 = {p50}");
        assert!((p90 - 900.0).abs() / 900.0 < 0.07, "p90 = {p90}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.07, "p99 = {p99}");
    }

    #[test]
    fn percentile_of_constant_distribution_is_exact_value() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(777);
        }
        // Clamping to [min, max] collapses the bucket back to the value.
        assert_eq!(h.percentile(0.5), 777);
        assert_eq!(h.percentile(0.99), 777);
        assert_eq!(h.min(), 777);
        assert_eq!(h.max(), 777);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), 0);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for v in [3u64, 17, 500, 9001, 12, 12, 1_000_000] {
            a.record(v);
            combined.record(v);
        }
        for v in [1u64, 256, 77_777] {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());
        assert_eq!(a.mean(), combined.mean());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.percentile(q), combined.percentile(q));
        }
    }

    #[test]
    fn mean_is_exact_not_bucketed() {
        let mut h = Histogram::new();
        h.record(1000);
        h.record(3000);
        assert_eq!(h.mean(), 2000.0);
    }

    #[test]
    fn handles_huge_values() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        // The representative value is bucketed (midpoint), so only bounded
        // relative error is guaranteed even at the extreme of the range.
        let p100 = h.percentile(1.0);
        assert!(p100 >= u64::MAX - (u64::MAX >> 4));
    }
}
