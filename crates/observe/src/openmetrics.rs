//! OpenMetrics / Prometheus text exposition for [`MetricsSnapshot`].
//!
//! The forthcoming concurrent server needs to be scrapeable from day one,
//! so the metrics registry learns the one wire format every scraper speaks:
//! the OpenMetrics text format (a superset-compatible profile of the
//! Prometheus exposition format). Counters export as `counter` families
//! with the mandatory `_total` suffix, gauges as `gauge`, and latency
//! histograms as `summary` families carrying `quantile` labels plus `_sum`
//! and `_count` series — quantiles are what the histograms already answer
//! precisely, where exposing raw log-linear buckets would not round-trip.
//!
//! Metric names are sanitized to the `[a-zA-Z_:][a-zA-Z0-9_:]*` charset
//! (dots and dashes become underscores) and prefixed with `orpheus_`; the
//! original registry key is preserved in a `key` label so dashboards can
//! still distinguish `selection.algo.gemm` from `selection_algo_gemm`.

use crate::metrics::MetricsSnapshot;

/// Sanitizes a registry key into an OpenMetrics metric-name suffix.
fn metric_name(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for (i, c) in key.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Escapes a label value per the exposition format (backslash, quote, LF).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

impl MetricsSnapshot {
    /// Renders the snapshot in the OpenMetrics text format, terminated by
    /// the mandatory `# EOF` marker. Suitable for a Prometheus scrape
    /// endpoint or for `promtool check metrics`.
    pub fn to_openmetrics(&self) -> String {
        let mut out = String::new();
        for (key, value) in &self.counters {
            let name = format!("orpheus_{}", metric_name(key));
            out.push_str(&format!("# TYPE {name} counter\n"));
            out.push_str(&format!(
                "{name}_total{{key=\"{}\"}} {value}\n",
                escape_label(key)
            ));
        }
        for (key, value) in &self.gauges {
            let name = format!("orpheus_{}", metric_name(key));
            out.push_str(&format!("# TYPE {name} gauge\n"));
            out.push_str(&format!(
                "{name}{{key=\"{}\"}} {value}\n",
                escape_label(key)
            ));
        }
        for (key, h) in &self.histograms {
            let name = format!("orpheus_{}", metric_name(key));
            let key = escape_label(key);
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (q, v) in [
                (0.5, h.percentile(0.50)),
                (0.9, h.percentile(0.90)),
                (0.99, h.percentile(0.99)),
            ] {
                out.push_str(&format!("{name}{{key=\"{key}\",quantile=\"{q}\"}} {v}\n"));
            }
            out.push_str(&format!(
                "{name}_sum{{key=\"{key}\"}} {}\n",
                h.mean() * h.count() as f64
            ));
            out.push_str(&format!("{name}_count{{key=\"{key}\"}} {}\n", h.count()));
        }
        out.push_str("# EOF\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    #[test]
    fn sanitizes_names_and_keeps_original_in_label() {
        assert_eq!(metric_name("run.latency_us"), "run_latency_us");
        assert_eq!(
            metric_name("selection.algo.im2col-gemm"),
            "selection_algo_im2col_gemm"
        );
        assert_eq!(metric_name("9lives"), "_lives");
    }

    #[test]
    fn exports_all_three_metric_kinds() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("graph.pass.rewrites".into(), 7);
        snap.gauges.insert("session.arena.bytes".into(), 4096.0);
        let mut h = Histogram::new();
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        snap.histograms.insert("run.latency_us".into(), h);
        let text = snap.to_openmetrics();

        assert!(text.contains("# TYPE orpheus_graph_pass_rewrites counter"));
        assert!(text.contains("orpheus_graph_pass_rewrites_total{key=\"graph.pass.rewrites\"} 7"));
        assert!(text.contains("# TYPE orpheus_session_arena_bytes gauge"));
        assert!(text.contains("orpheus_session_arena_bytes{key=\"session.arena.bytes\"} 4096"));
        assert!(text.contains("# TYPE orpheus_run_latency_us summary"));
        assert!(text.contains("quantile=\"0.5\""));
        assert!(text.contains("quantile=\"0.99\""));
        assert!(text.contains("orpheus_run_latency_us_count{key=\"run.latency_us\"} 3"));
        assert!(text.contains("orpheus_run_latency_us_sum{key=\"run.latency_us\"} 600"));
        assert!(text.trim_end().ends_with("# EOF"));
    }

    #[test]
    fn empty_snapshot_is_just_the_eof_marker() {
        assert_eq!(MetricsSnapshot::default().to_openmetrics(), "# EOF\n");
    }

    #[test]
    fn label_values_are_escaped() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("odd\"key\\name".into(), 1);
        let text = snap.to_openmetrics();
        assert!(text.contains(r#"key="odd\"key\\name""#));
    }
}
