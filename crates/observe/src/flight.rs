//! The always-on flight recorder: a fixed-size ring of recent events.
//!
//! The span recorder answers "where did the time go?" but only when a trace
//! was requested *before* the run. The flight recorder answers the
//! post-mortem question — "what happened just before this failed?" — and so
//! it is always armed: notable events (loads, runtime faults, fallback
//! rescues, session errors) land in a global ring buffer of the last
//! [`flight_capacity`] events regardless of whether tracing is enabled, and
//! the ring can be dumped at any time.
//!
//! The design keeps the recorder off the hot path's cost model:
//!
//! * **Idle is free.** Nothing is polled; a recorder nobody writes to costs
//!   nothing. Instrumentation sites only fire on *events* (a fault, a
//!   fallback, a load), never per-layer in steady state.
//! * **Writers never block.** A writer claims its slot with one atomic
//!   `fetch_add` and then `try_lock`s only that slot; if a reader (or a
//!   writer lapping the ring) holds it, the event is counted in
//!   [`flight_dropped`] and the writer moves on. Worker threads can
//!   therefore record from inside `orpheus-threads` parallel regions without
//!   convoying.
//! * **Bounded memory.** The ring holds a fixed number of slots; old events
//!   are overwritten, never accumulated.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::json::escape_into;
use crate::recorder::thread_ordinal;

/// Number of events the ring retains.
const CAPACITY: usize = 1024;

/// One recorded flight event.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Global sequence number (monotonic across wraparound).
    pub seq: u64,
    /// Microseconds since the process trace epoch.
    pub at_us: f64,
    /// Dense ordinal of the recording thread (shared with span records).
    pub tid: u64,
    /// Coarse event family (`"engine"`, `"session"`, `"selection"`, ...).
    pub category: &'static str,
    /// Short event name (`"fallback"`, `"run.error"`, ...).
    pub label: String,
    /// Free-form detail (layer name, error text, ...).
    pub detail: String,
}

struct Ring {
    slots: Vec<Mutex<Option<FlightEvent>>>,
    /// Next sequence number to hand out; `seq % CAPACITY` is the slot.
    cursor: AtomicU64,
    /// Events lost to slot contention (reader or lapping writer held it).
    dropped: AtomicU64,
}

fn ring() -> &'static Ring {
    static RING: OnceLock<Ring> = OnceLock::new();
    RING.get_or_init(|| Ring {
        slots: (0..CAPACITY).map(|_| Mutex::new(None)).collect(),
        cursor: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
    })
}

/// Number of events the flight recorder retains before overwriting.
pub fn flight_capacity() -> usize {
    CAPACITY
}

/// Records one event into the ring. Never blocks: on slot contention the
/// event is dropped and counted instead.
pub fn flight_record(category: &'static str, label: impl Into<String>, detail: impl Into<String>) {
    let ring = ring();
    let seq = ring.cursor.fetch_add(1, Ordering::Relaxed);
    let event = FlightEvent {
        seq,
        at_us: crate::recorder::epoch_elapsed_us(),
        tid: thread_ordinal(),
        category,
        label: label.into(),
        detail: detail.into(),
    };
    let slot = &ring.slots[(seq % CAPACITY as u64) as usize];
    match slot.try_lock() {
        Ok(mut guard) => *guard = Some(event),
        Err(_) => {
            ring.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Events lost to slot contention since process start.
pub fn flight_dropped() -> u64 {
    ring().dropped.load(Ordering::Relaxed)
}

/// Total events ever recorded (including those since overwritten).
pub fn flight_recorded() -> u64 {
    ring().cursor.load(Ordering::Relaxed)
}

/// Copies the ring's current contents, oldest first.
///
/// Returns at most [`flight_capacity`] events. A snapshot taken while
/// writers are active is a best-effort cut: slots being written at that
/// instant may be skipped (their writers count a drop instead of blocking).
pub fn flight_snapshot() -> Vec<FlightEvent> {
    let ring = ring();
    let mut events: Vec<FlightEvent> = ring
        .slots
        .iter()
        .filter_map(|slot| slot.lock().ok().and_then(|guard| guard.clone()))
        .collect();
    events.sort_by_key(|e| e.seq);
    events
}

/// Empties the ring (sequence numbers keep incrementing).
pub fn flight_clear() {
    for slot in &ring().slots {
        if let Ok(mut guard) = slot.lock() {
            *guard = None;
        }
    }
}

/// Renders events as human-readable lines (`seq  +t_ms  tid  cat.label  detail`).
pub fn flight_render(events: &[FlightEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&format!(
            "#{:<6} +{:>10.3} ms  t{:<3} {:<24} {}\n",
            e.seq,
            e.at_us / 1e3,
            e.tid,
            format!("{}.{}", e.category, e.label),
            e.detail
        ));
    }
    out
}

/// Renders events as JSON lines (one object per event).
pub fn flight_to_json_lines(events: &[FlightEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&format!(
            "{{\"seq\": {}, \"at_us\": {:.3}, \"tid\": {}, \"category\": \"",
            e.seq, e.at_us, e.tid
        ));
        escape_into(&mut out, e.category);
        out.push_str("\", \"label\": \"");
        escape_into(&mut out, &e.label);
        out.push_str("\", \"detail\": \"");
        escape_into(&mut out, &e.detail);
        out.push_str("\"}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The ring is global; tests that clear/fill it must not interleave.
    fn lock() -> MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn records_and_snapshots_in_order() {
        let _serial = lock();
        flight_clear();
        flight_record("test", "first", "a");
        flight_record("test", "second", "b");
        let events = flight_snapshot();
        let mine: Vec<_> = events.iter().filter(|e| e.category == "test").collect();
        assert!(mine.len() >= 2);
        let first = mine.iter().find(|e| e.label == "first").unwrap();
        let second = mine.iter().find(|e| e.label == "second").unwrap();
        assert!(first.seq < second.seq);
        assert!(second.at_us >= first.at_us);
        flight_clear();
    }

    #[test]
    fn wraparound_keeps_only_the_newest_capacity_events() {
        let _serial = lock();
        flight_clear();
        let n = flight_capacity() + 100;
        let base = flight_recorded();
        for i in 0..n {
            flight_record("wrap", format!("e{i}"), "");
        }
        let events: Vec<_> = flight_snapshot()
            .into_iter()
            .filter(|e| e.category == "wrap")
            .collect();
        assert_eq!(events.len(), flight_capacity());
        // The survivors are exactly the newest CAPACITY events, in order.
        assert_eq!(events.first().unwrap().seq, base + 100);
        assert_eq!(events.last().unwrap().seq, base + n as u64 - 1);
        for pair in events.windows(2) {
            assert_eq!(pair[1].seq, pair[0].seq + 1, "gap in surviving events");
        }
        flight_clear();
    }

    #[test]
    fn clear_empties_but_sequence_continues() {
        let _serial = lock();
        flight_clear();
        flight_record("clear", "before", "");
        let seq_before = flight_snapshot()
            .iter()
            .find(|e| e.label == "before")
            .unwrap()
            .seq;
        flight_clear();
        assert!(flight_snapshot().is_empty());
        flight_record("clear", "after", "");
        let seq_after = flight_snapshot()
            .iter()
            .find(|e| e.label == "after")
            .unwrap()
            .seq;
        assert!(seq_after > seq_before);
        flight_clear();
    }

    #[test]
    fn renderers_cover_every_event() {
        let _serial = lock();
        flight_clear();
        flight_record("render", "weird \"label\"", "line\nbreak");
        let events = flight_snapshot();
        let text = flight_render(&events);
        assert!(text.contains("render.weird"));
        let json = flight_to_json_lines(&events);
        assert!(json.contains(r#"\"label\""#));
        assert!(json.contains("line\\nbreak"));
        assert_eq!(json.lines().count(), events.len());
        flight_clear();
    }

    #[test]
    fn concurrent_writers_lose_nothing_to_races() {
        let _serial = lock();
        flight_clear();
        let dropped_before = flight_dropped();
        let threads = 8;
        let per_thread = 50; // well under CAPACITY in total
        std::thread::scope(|scope| {
            for t in 0..threads {
                scope.spawn(move || {
                    for i in 0..per_thread {
                        flight_record("race", format!("t{t}e{i}"), "");
                    }
                });
            }
        });
        let events: Vec<_> = flight_snapshot()
            .into_iter()
            .filter(|e| e.category == "race")
            .collect();
        // No two writers ever claim the same slot while the ring has spare
        // capacity, so with fewer events than slots nothing is dropped.
        assert_eq!(
            events.len() + (flight_dropped() - dropped_before) as usize,
            threads * per_thread
        );
        assert_eq!(flight_dropped(), dropped_before, "writers collided");
        // Every (thread, index) pair arrived exactly once.
        for t in 0..threads {
            for i in 0..per_thread {
                let label = format!("t{t}e{i}");
                assert_eq!(events.iter().filter(|e| e.label == label).count(), 1);
            }
        }
        flight_clear();
    }
}
