//! The global metrics registry: counters, gauges, and latency histograms.
//!
//! Like the span recorder, the registry is gated on the global enable flag —
//! a disabled `counter_add` is a single relaxed atomic load. Keys are plain
//! strings (instrumentation sites format dynamic keys such as
//! `selection.algo.gemm` on the spot); `BTreeMap` storage keeps exports
//! deterministically ordered.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::histogram::Histogram;
use crate::json::escape_into;
use crate::recorder::enabled;

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    f(&mut registry().lock().expect("metrics registry poisoned"))
}

/// Adds `delta` to the counter `name`. No-op while recording is disabled.
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    with_registry(|r| *r.counters.entry(name.to_string()).or_insert(0) += delta);
}

/// Sets the gauge `name` to `value`. No-op while recording is disabled.
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    with_registry(|r| {
        r.gauges.insert(name.to_string(), value);
    });
}

/// Records `value` into the histogram `name`. No-op while recording is
/// disabled. Latency histograms in this workspace record microseconds.
pub fn histogram_record(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    with_registry(|r| {
        r.histograms
            .entry(name.to_string())
            .or_default()
            .record(value)
    });
}

/// Discards all collected metrics.
pub fn reset_metrics() {
    with_registry(|r| *r = Registry::default());
}

/// A point-in-time copy of the metrics registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotonic event counts.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins values.
    pub gauges: BTreeMap<String, f64>,
    /// Latency distributions.
    pub histograms: BTreeMap<String, Histogram>,
}

/// Copies the current metrics out of the registry (the registry keeps
/// accumulating).
pub fn metrics_snapshot() -> MetricsSnapshot {
    with_registry(|r| MetricsSnapshot {
        counters: r.counters.clone(),
        gauges: r.gauges.clone(),
        histograms: r.histograms.clone(),
    })
}

impl MetricsSnapshot {
    /// Renders the snapshot as a pretty-printed JSON object with `counters`,
    /// `gauges`, and `histograms` sections; histograms are summarized as
    /// count/min/max/mean/p50/p90/p99.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            escape_into(&mut out, k);
            out.push_str(&format!("\": {v}"));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            escape_into(&mut out, k);
            out.push_str(&format!("\": {v}"));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            escape_into(&mut out, k);
            out.push_str(&format!(
                "\": {{\"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {:.3}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                h.count(),
                h.min(),
                h.max(),
                h.mean(),
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99),
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{disable, enable};
    use std::sync::MutexGuard;

    fn lock() -> MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_metrics_are_dropped() {
        let _serial = lock();
        disable();
        reset_metrics();
        counter_add("c", 5);
        gauge_set("g", 1.0);
        histogram_record("h", 10);
        let snap = metrics_snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn counters_accumulate_and_export() {
        let _serial = lock();
        enable();
        reset_metrics();
        counter_add("passes.total", 2);
        counter_add("passes.total", 3);
        gauge_set("threads", 4.0);
        for us in [100u64, 200, 300] {
            histogram_record("run.latency_us", us);
        }
        disable();
        let snap = metrics_snapshot();
        reset_metrics();
        assert_eq!(snap.counters["passes.total"], 5);
        assert_eq!(snap.gauges["threads"], 4.0);
        assert_eq!(snap.histograms["run.latency_us"].count(), 3);
        let json = snap.to_json();
        assert!(json.contains("\"passes.total\": 5"));
        assert!(json.contains("\"count\": 3"));
        assert!(json.contains("\"p50\""));
        assert!(json.contains("\"p99\""));
    }

    #[test]
    fn empty_snapshot_renders_valid_json_skeleton() {
        let snap = MetricsSnapshot::default();
        let json = snap.to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"gauges\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }
}
