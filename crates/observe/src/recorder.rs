//! The global span recorder.
//!
//! Recording is off by default and gated by one `AtomicBool`: every entry
//! point performs a single relaxed load and returns an inert guard when the
//! recorder is disabled, so instrumented hot paths pay no allocation, no
//! locking, and no clock read unless a trace was requested.
//!
//! When enabled, [`span`] opens a hierarchical span: the parent is taken
//! from a thread-local stack, timestamps come from a process-wide epoch, and
//! the finished record is appended to a global buffer when the guard drops.
//! Worker threads that logically run *inside* a span on another thread (the
//! thread pool's chunk bodies) pass the parent id explicitly via
//! [`span_with_parent`].

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since the process trace epoch (shared with the
/// flight recorder so both timelines line up).
pub(crate) fn epoch_elapsed_us() -> f64 {
    epoch().elapsed().as_secs_f64() * 1e6
}

fn spans() -> &'static Mutex<Vec<SpanRecord>> {
    static SPANS: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    SPANS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static PARENT_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_ORDINAL: Cell<Option<u64>> = const { Cell::new(None) };
}

pub(crate) fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|cell| match cell.get() {
        Some(t) => t,
        None => {
            let t = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            cell.set(Some(t));
            t
        }
    })
}

/// An attribute value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A string attribute (layer names, algorithm names).
    Str(String),
    /// An integer attribute (counts, FLOPs).
    Int(i64),
    /// A floating-point attribute (times, rates).
    Float(f64),
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Int(v as i64)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Int(v as i64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}

/// A finished span, as stored in the trace buffer.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id within the process.
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Human-readable span name ("import", layer name, pass name...).
    pub name: String,
    /// Coarse grouping used by exporters ("engine", "pass", "layer"...).
    pub category: &'static str,
    /// Start time in microseconds since the process trace epoch.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Small dense ordinal of the recording thread (0 = first thread seen).
    pub tid: u64,
    /// Key/value attributes.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// Turns recording on. Spans and metrics recorded before this call are lost.
pub fn enable() {
    epoch(); // pin the epoch before the first span
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns recording off. Already-collected data stays available via
/// [`crate::take_trace`] / [`crate::metrics_snapshot`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether the recorder is currently collecting.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Discards all collected spans (ids keep incrementing).
pub fn reset_spans() {
    spans().lock().expect("span buffer poisoned").clear();
}

/// Removes and returns all collected spans, ordered by completion time.
pub fn take_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *spans().lock().expect("span buffer poisoned"))
}

/// Id of the innermost open span on this thread, if any.
///
/// Hand this to worker threads so their spans parent correctly (see
/// [`span_with_parent`]).
pub fn current_span_id() -> Option<u64> {
    if !enabled() {
        return None;
    }
    PARENT_STACK.with(|s| s.borrow().last().copied())
}

/// Opens a span whose parent is the innermost open span on this thread.
///
/// Returns an inert, allocation-free guard when recording is disabled.
pub fn span(name: impl Into<String>, category: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { inner: None };
    }
    let parent = PARENT_STACK.with(|s| s.borrow().last().copied());
    open_span(name.into(), category, parent)
}

/// Opens a span with an explicitly provided parent (for worker threads).
pub fn span_with_parent(
    name: impl Into<String>,
    category: &'static str,
    parent: Option<u64>,
) -> SpanGuard {
    if !enabled() {
        return SpanGuard { inner: None };
    }
    open_span(name.into(), category, parent)
}

fn open_span(name: String, category: &'static str, parent: Option<u64>) -> SpanGuard {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    PARENT_STACK.with(|s| s.borrow_mut().push(id));
    SpanGuard {
        inner: Some(SpanInner {
            id,
            parent,
            name,
            category,
            start: Instant::now(),
            start_us: epoch().elapsed().as_secs_f64() * 1e6,
            attrs: Vec::new(),
        }),
    }
}

#[derive(Debug)]
struct SpanInner {
    id: u64,
    parent: Option<u64>,
    name: String,
    category: &'static str,
    start: Instant,
    start_us: f64,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// RAII guard for an open span; records the span when dropped.
#[derive(Debug)]
#[must_use = "dropping the guard immediately records a zero-length span"]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

impl SpanGuard {
    /// Attaches an attribute. No-op on an inert guard.
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(inner) = &mut self.inner {
            inner.attrs.push((key, value.into()));
        }
    }

    /// The span's id, or `None` for an inert guard.
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur_us = inner.start.elapsed().as_secs_f64() * 1e6;
        PARENT_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards normally drop in LIFO order; retain() also copes with a
            // guard outliving its children being dropped out of order.
            if stack.last() == Some(&inner.id) {
                stack.pop();
            } else {
                stack.retain(|&id| id != inner.id);
            }
        });
        let record = SpanRecord {
            id: inner.id,
            parent: inner.parent,
            name: inner.name,
            category: inner.category,
            start_us: inner.start_us,
            dur_us,
            tid: thread_ordinal(),
            attrs: inner.attrs,
        };
        spans().lock().expect("span buffer poisoned").push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is global, so tests that enable it must not run in
    // parallel with each other; a local mutex serializes them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recorder_collects_nothing() {
        let _serial = lock();
        disable();
        reset_spans();
        {
            let mut g = span("ignored", "test");
            g.attr("k", 1u64);
            assert_eq!(g.id(), None);
        }
        assert!(!enabled());
        assert!(take_spans().is_empty());
        assert_eq!(current_span_id(), None);
    }

    #[test]
    fn spans_nest_via_thread_local_stack() {
        let _serial = lock();
        enable();
        reset_spans();
        {
            let outer = span("outer", "test");
            let outer_id = outer.id().unwrap();
            assert_eq!(current_span_id(), Some(outer_id));
            {
                let inner = span("inner", "test");
                assert_eq!(inner.id().map(|_| ()), Some(()));
            }
            assert_eq!(current_span_id(), Some(outer_id));
        }
        disable();
        let spans = take_spans();
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert!(outer.dur_us >= inner.dur_us);
        assert!(outer.start_us <= inner.start_us);
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let _serial = lock();
        enable();
        reset_spans();
        {
            let outer = span("dispatch", "test");
            let parent = outer.id();
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    let _child = span_with_parent("chunk", "test", parent);
                });
            });
        }
        disable();
        let spans = take_spans();
        let child = spans.iter().find(|s| s.name == "chunk").unwrap();
        let outer = spans.iter().find(|s| s.name == "dispatch").unwrap();
        assert_eq!(child.parent, Some(outer.id));
        assert_ne!(child.tid, outer.tid);
    }

    #[test]
    fn attrs_are_recorded() {
        let _serial = lock();
        enable();
        reset_spans();
        {
            let mut g = span("with-attrs", "test");
            g.attr("op", "Conv");
            g.attr("flops", 1234u64);
            g.attr("ratio", 0.5f64);
        }
        disable();
        let spans = take_spans();
        let s = spans.iter().find(|s| s.name == "with-attrs").unwrap();
        assert_eq!(
            s.attrs,
            vec![
                ("op", AttrValue::Str("Conv".to_string())),
                ("flops", AttrValue::Int(1234)),
                ("ratio", AttrValue::Float(0.5)),
            ]
        );
    }
}
