//! Observability for the Orpheus reproduction: spans, metrics, exporters.
//!
//! The original Orpheus paper evaluates frameworks by end-to-end latency;
//! explaining *where* that latency comes from needs structure the flat layer
//! table cannot express — which simplification pass rewrote what, which
//! algorithm the selector timed and rejected, how work spread across pool
//! threads. This crate provides that structure:
//!
//! * a **span recorder** ([`span`], [`SpanGuard`]) building a hierarchical
//!   trace of the engine's work, globally gated so instrumented code pays one
//!   relaxed atomic load when tracing is off;
//! * a **metrics registry** ([`counter_add`], [`gauge_set`],
//!   [`histogram_record`]) with log-linear latency [`Histogram`]s that report
//!   p50/p90/p99;
//! * **exporters**: Chrome trace-event JSON for <https://ui.perfetto.dev>
//!   ([`Trace::to_chrome_trace`]), JSON lines ([`Trace::to_json_lines`]), and
//!   a metrics summary ([`MetricsSnapshot::to_json`]).
//!
//! # Examples
//!
//! ```
//! use orpheus_observe as observe;
//!
//! observe::enable();
//! {
//!     let mut load = observe::span("load", "engine");
//!     load.attr("model", "resnet18");
//!     let _import = observe::span("import", "engine");
//! }
//! observe::counter_add("graph.pass.constant-fold.rewrites", 2);
//! observe::disable();
//!
//! let trace = observe::take_trace();
//! assert_eq!(trace.len(), 2);
//! let chrome = trace.to_chrome_trace();
//! assert!(chrome.contains("\"import\""));
//! let metrics = observe::metrics_snapshot();
//! observe::reset();
//! assert_eq!(metrics.counters["graph.pass.constant-fold.rewrites"], 2);
//! ```

#![forbid(unsafe_code)]

mod histogram;
pub mod json;
mod metrics;
mod recorder;
mod trace;

pub use histogram::Histogram;
pub use metrics::{
    counter_add, gauge_set, histogram_record, metrics_snapshot, reset_metrics, MetricsSnapshot,
};
pub use recorder::{
    current_span_id, disable, enable, enabled, span, span_with_parent, AttrValue, SpanGuard,
    SpanRecord,
};
pub use trace::Trace;

/// Removes and returns every span collected so far.
pub fn take_trace() -> Trace {
    Trace {
        spans: recorder::take_spans(),
    }
}

/// Discards all collected spans and metrics (the enable flag is unchanged).
pub fn reset() {
    recorder::reset_spans();
    reset_metrics();
}
