//! Observability for the Orpheus reproduction: spans, metrics, exporters.
//!
//! The original Orpheus paper evaluates frameworks by end-to-end latency;
//! explaining *where* that latency comes from needs structure the flat layer
//! table cannot express — which simplification pass rewrote what, which
//! algorithm the selector timed and rejected, how work spread across pool
//! threads. This crate provides that structure:
//!
//! * a **span recorder** ([`span`], [`SpanGuard`]) building a hierarchical
//!   trace of the engine's work, globally gated so instrumented code pays one
//!   relaxed atomic load when tracing is off;
//! * a **metrics registry** ([`counter_add`], [`gauge_set`],
//!   [`histogram_record`]) with log-linear latency [`Histogram`]s that report
//!   p50/p90/p99;
//! * **exporters**: Chrome trace-event JSON for <https://ui.perfetto.dev>
//!   ([`Trace::to_chrome_trace`]), JSON lines ([`Trace::to_json_lines`]), a
//!   metrics summary ([`MetricsSnapshot::to_json`]), and the
//!   OpenMetrics/Prometheus text format
//!   ([`MetricsSnapshot::to_openmetrics`]);
//! * an always-on **flight recorder** ([`flight_record`],
//!   [`flight_snapshot`]): a fixed-size lock-free ring of recent notable
//!   events (faults, fallbacks, loads) for post-mortem dumps, armed even
//!   when tracing is off;
//! * an **attribution fold** ([`Attribution`]) that collapses span trees
//!   into self/total time per layer and per selection algorithm.
//!
//! # Examples
//!
//! ```
//! use orpheus_observe as observe;
//!
//! observe::enable();
//! {
//!     let mut load = observe::span("load", "engine");
//!     load.attr("model", "resnet18");
//!     let _import = observe::span("import", "engine");
//! }
//! observe::counter_add("graph.pass.constant-fold.rewrites", 2);
//! observe::disable();
//!
//! let trace = observe::take_trace();
//! assert_eq!(trace.len(), 2);
//! let chrome = trace.to_chrome_trace();
//! assert!(chrome.contains("\"import\""));
//! let metrics = observe::metrics_snapshot();
//! observe::reset();
//! assert_eq!(metrics.counters["graph.pass.constant-fold.rewrites"], 2);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod attribution;
mod flight;
mod histogram;
pub mod json;
mod metrics;
mod openmetrics;
mod recorder;
mod trace;

pub use attribution::{Attribution, AttributionRow};
pub use flight::{
    flight_capacity, flight_clear, flight_dropped, flight_record, flight_recorded, flight_render,
    flight_snapshot, flight_to_json_lines, FlightEvent,
};
pub use histogram::Histogram;
pub use metrics::{
    counter_add, gauge_set, histogram_record, metrics_snapshot, reset_metrics, MetricsSnapshot,
};
pub use recorder::{
    current_span_id, disable, enable, enabled, span, span_with_parent, AttrValue, SpanGuard,
    SpanRecord,
};
pub use trace::Trace;

/// Truncates `s` to at most `max` characters, ending with `…` when cut.
///
/// UTF-8 safe (counts characters, not bytes). Shared by the attribution
/// tables here and the CLI's report renderers.
pub fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        return s.to_string();
    }
    let keep = max.saturating_sub(1);
    let mut out: String = s.chars().take(keep).collect();
    out.push('…');
    out
}

/// Removes and returns every span collected so far.
pub fn take_trace() -> Trace {
    Trace {
        spans: recorder::take_spans(),
    }
}

/// Discards all collected spans and metrics (the enable flag is unchanged).
pub fn reset() {
    recorder::reset_spans();
    reset_metrics();
}
