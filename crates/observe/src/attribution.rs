//! Folding span trees into per-layer self/total time attribution.
//!
//! A trace of N timed runs contains one span per layer invocation, nested
//! under per-run `run` spans, with kernel-internal child spans (GEMM
//! pack/compute, pool chunks) below them. The paper's Fig. 2-style analysis
//! wants the *aggregate* view: for each layer (and for each selection
//! algorithm), how much wall time did it account for across all runs, and
//! how much of that was spent in the layer itself versus in instrumented
//! children? [`Attribution::from_trace`] computes exactly that fold, so the
//! CLI's `profile --report` and `bench` share one definition of
//! "self time": span duration minus the duration of its direct children
//! *recorded on the same thread* (cross-thread children overlap their
//! parent in wall time, so subtracting them would over-discount).

use std::collections::BTreeMap;

use crate::trace::Trace;

/// Aggregate timing for one span name within a category.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionRow {
    /// Span name (layer instance name for `"layer"` spans).
    pub name: String,
    /// Operator family, from the `op` attribute when present.
    pub op: String,
    /// Selected implementation, from the `implementation` attribute.
    pub implementation: String,
    /// Number of invocations folded into this row.
    pub count: u64,
    /// Sum of span durations, µs.
    pub total_us: f64,
    /// Sum of (duration − same-thread direct children), µs.
    pub self_us: f64,
}

/// A folded attribution table over one category of spans.
#[derive(Debug, Clone, Default)]
pub struct Attribution {
    /// One row per distinct span name, ordered by descending total time.
    pub rows: Vec<AttributionRow>,
}

impl Attribution {
    /// Folds every span of `category` in `trace` into per-name rows.
    pub fn from_trace(trace: &Trace, category: &str) -> Attribution {
        // Direct-children time per parent id, same-thread only.
        let mut child_us: BTreeMap<u64, f64> = BTreeMap::new();
        let mut tid_of: BTreeMap<u64, u64> = BTreeMap::new();
        for span in &trace.spans {
            tid_of.insert(span.id, span.tid);
        }
        for span in &trace.spans {
            if let Some(parent) = span.parent {
                if tid_of.get(&parent) == Some(&span.tid) {
                    *child_us.entry(parent).or_insert(0.0) += span.dur_us;
                }
            }
        }
        let mut rows: BTreeMap<String, AttributionRow> = BTreeMap::new();
        for span in trace.by_category(category) {
            let row = rows
                .entry(span.name.clone())
                .or_insert_with(|| AttributionRow {
                    name: span.name.clone(),
                    op: Trace::attr_str(span, "op").unwrap_or("?").to_string(),
                    implementation: Trace::attr_str(span, "implementation")
                        .unwrap_or("?")
                        .to_string(),
                    count: 0,
                    total_us: 0.0,
                    self_us: 0.0,
                });
            row.count += 1;
            row.total_us += span.dur_us;
            let children = child_us.get(&span.id).copied().unwrap_or(0.0);
            row.self_us += (span.dur_us - children).max(0.0);
        }
        let mut rows: Vec<AttributionRow> = rows.into_values().collect();
        rows.sort_by(|a, b| {
            b.total_us
                .partial_cmp(&a.total_us)
                .expect("durations are finite")
        });
        Attribution { rows }
    }

    /// Regroups the rows by implementation (selection algorithm), ordered by
    /// descending total time. Returns `(implementation, count, total_us,
    /// self_us)` tuples.
    pub fn by_algorithm(&self) -> Vec<(String, u64, f64, f64)> {
        let mut map: BTreeMap<&str, (u64, f64, f64)> = BTreeMap::new();
        for row in &self.rows {
            let entry = map.entry(&row.implementation).or_insert((0, 0.0, 0.0));
            entry.0 += row.count;
            entry.1 += row.total_us;
            entry.2 += row.self_us;
        }
        let mut out: Vec<(String, u64, f64, f64)> = map
            .into_iter()
            .map(|(k, (c, t, s))| (k.to_string(), c, t, s))
            .collect();
        out.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("durations are finite"));
        out
    }

    /// Sum of all rows' total time, µs.
    pub fn total_us(&self) -> f64 {
        self.rows.iter().map(|r| r.total_us).sum()
    }

    /// Renders the per-name table (times in milliseconds).
    pub fn render(&self) -> String {
        let total = self.total_us().max(1e-12);
        let mut out = format!(
            "{:<28} {:>10} {:<22} {:>6} {:>11} {:>11} {:>7}\n",
            "name", "op", "implementation", "calls", "total (ms)", "self (ms)", "self%"
        );
        for row in &self.rows {
            out.push_str(&format!(
                "{:<28} {:>10} {:<22} {:>6} {:>11.3} {:>11.3} {:>6.1}%\n",
                crate::truncate(&row.name, 28),
                crate::truncate(&row.op, 10),
                crate::truncate(&row.implementation, 22),
                row.count,
                row.total_us / 1e3,
                row.self_us / 1e3,
                100.0 * row.self_us / total,
            ));
        }
        out
    }

    /// Renders the by-algorithm table (times in milliseconds).
    pub fn render_by_algorithm(&self) -> String {
        let mut out = format!(
            "{:<28} {:>6} {:>11} {:>11}\n",
            "algorithm", "calls", "total (ms)", "self (ms)"
        );
        for (algo, count, total_us, self_us) in self.by_algorithm() {
            out.push_str(&format!(
                "{:<28} {:>6} {:>11.3} {:>11.3}\n",
                crate::truncate(&algo, 28),
                count,
                total_us / 1e3,
                self_us / 1e3,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{AttrValue, SpanRecord};

    #[allow(clippy::too_many_arguments)]
    fn span(
        id: u64,
        parent: Option<u64>,
        name: &str,
        category: &'static str,
        start_us: f64,
        dur_us: f64,
        tid: u64,
        implementation: Option<&str>,
    ) -> SpanRecord {
        let mut attrs = vec![("op", AttrValue::Str("Conv".into()))];
        if let Some(imp) = implementation {
            attrs.push(("implementation", AttrValue::Str(imp.into())));
        }
        SpanRecord {
            id,
            parent,
            name: name.into(),
            category,
            start_us,
            dur_us,
            tid,
            attrs,
        }
    }

    #[test]
    fn folds_repeat_invocations_and_subtracts_children() {
        let trace = Trace {
            spans: vec![
                span(1, None, "run", "session", 0.0, 100.0, 0, None),
                span(
                    2,
                    Some(1),
                    "conv_0",
                    "layer",
                    0.0,
                    60.0,
                    0,
                    Some("spatial-pack"),
                ),
                span(3, Some(2), "gemm", "gemm", 5.0, 20.0, 0, None),
                span(4, None, "run", "session", 100.0, 100.0, 0, None),
                span(
                    5,
                    Some(4),
                    "conv_0",
                    "layer",
                    100.0,
                    40.0,
                    0,
                    Some("spatial-pack"),
                ),
            ],
        };
        let attr = Attribution::from_trace(&trace, "layer");
        assert_eq!(attr.rows.len(), 1);
        let row = &attr.rows[0];
        assert_eq!(row.name, "conv_0");
        assert_eq!(row.count, 2);
        assert!((row.total_us - 100.0).abs() < 1e-9);
        // First invocation self = 60 - 20, second = 40 (no children).
        assert!((row.self_us - 80.0).abs() < 1e-9);
        assert_eq!(row.implementation, "spatial-pack");
    }

    #[test]
    fn cross_thread_children_do_not_discount_self_time() {
        let trace = Trace {
            spans: vec![
                span(1, None, "conv_0", "layer", 0.0, 50.0, 0, Some("im2col")),
                // A pool worker's chunk span: overlaps the parent in wall
                // time, so it must not be subtracted.
                span(2, Some(1), "chunk", "threads", 0.0, 45.0, 1, None),
            ],
        };
        let attr = Attribution::from_trace(&trace, "layer");
        assert!((attr.rows[0].self_us - 50.0).abs() < 1e-9);
    }

    #[test]
    fn by_algorithm_groups_and_orders() {
        let trace = Trace {
            spans: vec![
                span(1, None, "conv_a", "layer", 0.0, 30.0, 0, Some("winograd")),
                span(2, None, "conv_b", "layer", 30.0, 10.0, 0, Some("direct")),
                span(3, None, "conv_c", "layer", 40.0, 25.0, 0, Some("winograd")),
            ],
        };
        let attr = Attribution::from_trace(&trace, "layer");
        let algos = attr.by_algorithm();
        assert_eq!(algos.len(), 2);
        assert_eq!(algos[0].0, "winograd");
        assert_eq!(algos[0].1, 2);
        assert!((algos[0].2 - 55.0).abs() < 1e-9);
        assert_eq!(algos[1].0, "direct");
        let text = attr.render();
        assert!(text.contains("conv_a") && text.contains("self%"));
        assert!(attr.render_by_algorithm().contains("winograd"));
    }

    #[test]
    fn empty_trace_yields_empty_table() {
        let attr = Attribution::from_trace(&Trace::default(), "layer");
        assert!(attr.rows.is_empty());
        assert_eq!(attr.total_us(), 0.0);
    }

    #[test]
    fn negative_self_time_is_clamped_to_zero() {
        // Child longer than parent (clock skew / measurement jitter).
        let trace = Trace {
            spans: vec![
                span(1, None, "conv_0", "layer", 0.0, 10.0, 0, None),
                span(2, Some(1), "gemm", "gemm", 0.0, 15.0, 0, None),
            ],
        };
        let attr = Attribution::from_trace(&trace, "layer");
        assert_eq!(attr.rows[0].self_us, 0.0);
    }
}
