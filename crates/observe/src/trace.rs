//! Trace container and exporters.
//!
//! A [`Trace`] is the set of spans drained from the recorder. It exports to
//! two formats:
//!
//! * **Chrome trace** (`to_chrome_trace`) — a JSON array of complete (`"X"`)
//!   events loadable in `chrome://tracing` or <https://ui.perfetto.dev>.
//!   Nesting is positional: a child renders inside its parent because its
//!   `[ts, ts+dur]` interval lies within the parent's on the same track.
//! * **JSON lines** (`to_json_lines`) — one object per span with explicit
//!   `id`/`parent` fields, for programmatic consumers that want the tree
//!   structure rather than a timeline.

use crate::json::escape_into;
use crate::recorder::{AttrValue, SpanRecord};

/// A drained collection of spans.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Finished spans, ordered by completion time.
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    /// Number of spans in the trace.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the trace holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans belonging to `category`, in completion order.
    pub fn by_category<'a>(&'a self, category: &str) -> impl Iterator<Item = &'a SpanRecord> {
        let category = category.to_string();
        self.spans.iter().filter(move |s| s.category == category)
    }

    /// Direct children of the span with id `parent`.
    pub fn children_of(&self, parent: u64) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(move |s| s.parent == Some(parent))
    }

    /// String attribute `key` of a span, if present.
    pub fn attr_str<'a>(span: &'a SpanRecord, key: &str) -> Option<&'a str> {
        span.attrs.iter().find_map(|(k, v)| match v {
            AttrValue::Str(s) if *k == key => Some(s.as_str()),
            _ => None,
        })
    }

    /// Integer attribute `key` of a span, if present.
    pub fn attr_int(span: &SpanRecord, key: &str) -> Option<i64> {
        span.attrs.iter().find_map(|(k, v)| match v {
            AttrValue::Int(i) if *k == key => Some(*i),
            _ => None,
        })
    }

    /// Renders the trace in Chrome trace-event format (a JSON array of
    /// complete events, timestamps in microseconds).
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("[");
        let mut sorted: Vec<&SpanRecord> = self.spans.iter().collect();
        sorted.sort_by(|a, b| {
            a.start_us
                .partial_cmp(&b.start_us)
                .expect("span timestamps are finite")
        });
        for (i, span) in sorted.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  {\"name\": \"");
            escape_into(&mut out, &span.name);
            out.push_str("\", \"cat\": \"");
            escape_into(&mut out, span.category);
            out.push_str(&format!(
                "\", \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 1, \"tid\": {}",
                span.start_us, span.dur_us, span.tid
            ));
            out.push_str(", \"args\": {");
            write_args(&mut out, span, false);
            out.push_str("}}");
        }
        out.push_str("\n]\n");
        out
    }

    /// Renders the trace as JSON lines: one object per span, carrying the
    /// explicit `id`/`parent` tree structure.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for span in &self.spans {
            out.push_str(&format!("{{\"id\": {}, \"parent\": ", span.id));
            match span.parent {
                Some(p) => out.push_str(&p.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(", \"name\": \"");
            escape_into(&mut out, &span.name);
            out.push_str("\", \"cat\": \"");
            escape_into(&mut out, span.category);
            out.push_str(&format!(
                "\", \"start_us\": {:.3}, \"dur_us\": {:.3}, \"tid\": {}",
                span.start_us, span.dur_us, span.tid
            ));
            write_args(&mut out, span, true);
            out.push_str("}\n");
        }
        out
    }
}

fn write_args(out: &mut String, span: &SpanRecord, leading_comma: bool) {
    for (i, (k, v)) in span.attrs.iter().enumerate() {
        if i > 0 || leading_comma {
            out.push_str(", ");
        }
        out.push('"');
        escape_into(out, k);
        out.push_str("\": ");
        match v {
            AttrValue::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            AttrValue::Int(i) => out.push_str(&i.to_string()),
            AttrValue::Float(f) => out.push_str(&format!("{f:.3}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            spans: vec![
                SpanRecord {
                    id: 2,
                    parent: Some(1),
                    name: "conv\"1\"".to_string(),
                    category: "layer",
                    start_us: 10.0,
                    dur_us: 5.0,
                    tid: 0,
                    attrs: vec![
                        ("op", AttrValue::Str("Conv".to_string())),
                        ("flops", AttrValue::Int(42)),
                    ],
                },
                SpanRecord {
                    id: 1,
                    parent: None,
                    name: "run".to_string(),
                    category: "engine",
                    start_us: 0.0,
                    dur_us: 20.0,
                    tid: 0,
                    attrs: vec![],
                },
            ],
        }
    }

    #[test]
    fn chrome_trace_is_sorted_and_escaped() {
        let json = sample().to_chrome_trace();
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        // The parent starts earlier, so it must be emitted first.
        let run_pos = json.find("\"run\"").unwrap();
        let conv_pos = json.find("conv").unwrap();
        assert!(run_pos < conv_pos);
        assert!(json.contains(r#"conv\"1\""#));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"args\": {\"op\": \"Conv\", \"flops\": 42}"));
    }

    #[test]
    fn json_lines_carry_tree_structure() {
        let lines = sample().to_json_lines();
        let mut it = lines.lines();
        let first = it.next().unwrap();
        let second = it.next().unwrap();
        assert!(first.contains("\"id\": 2") && first.contains("\"parent\": 1"));
        assert!(second.contains("\"id\": 1") && second.contains("\"parent\": null"));
        assert_eq!(it.next(), None);
    }

    #[test]
    fn accessors_navigate_the_tree() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert_eq!(t.by_category("layer").count(), 1);
        let child = t.children_of(1).next().unwrap();
        assert_eq!(Trace::attr_str(child, "op"), Some("Conv"));
        assert_eq!(Trace::attr_int(child, "flops"), Some(42));
        assert_eq!(Trace::attr_int(child, "missing"), None);
    }

    #[test]
    fn empty_trace_renders_empty_array() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.to_chrome_trace(), "[\n]\n");
        assert_eq!(t.to_json_lines(), "");
    }
}
