//! Chaos tests: hammer the serving core with injected layer faults and
//! prove the robustness contract holds.
//!
//! The contract under test:
//! 1. **No escaped panics** — every injected panic is caught by worker
//!    isolation; no worker thread dies (`DrainReport::worker_panics == 0`).
//! 2. **Every request resolves** — completed (primary or reference), shed,
//!    or faulted; outcome counts sum exactly to the requests issued.
//! 3. **The breaker works** — it trips open under consecutive failures,
//!    serves the reference path while open, half-open-probes after the
//!    cooldown, and closes again once the primary path heals.
//! 4. **It is observable** — sheds, respawns, and breaker transitions land
//!    in the flight recorder.

use std::sync::{Arc, Once};
use std::time::Duration;

use orpheus::{Engine, FaultMode, Network};
use orpheus_models::{build_model, ModelKind};
use orpheus_serve::{BreakerState, Route, ServeError, Server, ServerConfig};
use orpheus_tensor::Tensor;

/// Injected panics are expected here; keep the default hook's per-panic
/// stderr spam out of the test output while still reporting real panics.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|msg| msg.contains("injected panic"));
            if !injected {
                default_hook(info);
            }
        }));
    });
}

fn faulty_network(mode: FaultMode) -> Arc<Network> {
    let engine = Engine::builder()
        .fault_injection("pack")
        .fault_mode(mode)
        .build()
        .expect("engine builds");
    Arc::new(
        engine
            .load(build_model(ModelKind::TinyCnn))
            .expect("model loads"),
    )
}

fn faulty_batched_network(mode: FaultMode, max_batch: usize) -> Arc<Network> {
    let engine = Engine::builder()
        .fault_injection("pack")
        .fault_mode(mode)
        .max_batch(max_batch)
        .build()
        .expect("engine builds");
    Arc::new(
        engine
            .load(build_model(ModelKind::TinyCnn))
            .expect("model loads"),
    )
}

fn input(k: usize) -> Tensor {
    Tensor::from_fn(&[1, 3, 8, 8], move |i| ((i + k) % 13) as f32 * 0.1 - 0.5)
}

/// 1200 concurrent requests against flaky layers (30% failure per call):
/// everything resolves, no panic escapes, trips and respawns are recorded.
#[test]
fn chaos_flaky_layers_thousand_concurrent_requests() {
    quiet_injected_panics();
    let network = faulty_network(FaultMode::Flaky {
        per_mille: 300,
        seed: 42,
    });
    let server = Arc::new(Server::start(
        network,
        ServerConfig {
            workers: 4,
            queue_depth: 32,
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(1),
            ..ServerConfig::default()
        },
    ));

    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 150;
    const TOTAL: usize = CLIENTS * PER_CLIENT;

    #[derive(Default)]
    struct Outcomes {
        primary: usize,
        reference: usize,
        shed: usize,
        faulted: usize,
    }

    let merged: Outcomes = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let server = Arc::clone(&server);
                scope.spawn(move || {
                    let mut tally = Outcomes::default();
                    for k in 0..PER_CLIENT {
                        let outcome = match server.submit(input(c * 1009 + k)) {
                            Ok(ticket) => ticket.wait(),
                            Err(e) => Err(e),
                        };
                        match outcome {
                            Ok(reply) => match reply.route {
                                Route::Primary => tally.primary += 1,
                                Route::Reference => tally.reference += 1,
                            },
                            Err(
                                ServeError::Overloaded
                                | ServeError::DeadlineExpired
                                | ServeError::ShuttingDown,
                            ) => tally.shed += 1,
                            Err(ServeError::Faulted(_)) => tally.faulted += 1,
                        }
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().fold(Outcomes::default(), |mut acc, h| {
            let t = h.join().expect("client thread never panics");
            acc.primary += t.primary;
            acc.reference += t.reference;
            acc.shed += t.shed;
            acc.faulted += t.faulted;
            acc
        })
    });

    let drain = server.shutdown();
    let stats = server.stats();

    // Every request resolved: completed, shed, or faulted.
    assert_eq!(
        merged.primary + merged.reference + merged.shed + merged.faulted,
        TOTAL,
        "every request must resolve"
    );
    // The reference retry rescues every primary failure (the reference
    // twins bypass the fault wrappers), so nothing faults through.
    assert_eq!(merged.faulted, 0, "reference rescue leaves no faults");
    assert!(merged.reference > 0, "flaky layers force reference rescues");
    assert!(merged.primary > 0, "healthy calls still serve primary");

    // Faults actually fired and were isolated in place.
    assert!(stats.panics_isolated > 0, "chaos must inject panics");
    assert!(stats.respawns > 0, "isolated panics re-arm sessions");
    assert!(stats.breaker_trips > 0, "threshold 1 must trip the breaker");

    // No panic escaped a worker thread.
    assert_eq!(drain.worker_panics, 0, "panic isolation must hold");
    assert!(drain.clean, "drain must finish clean: {drain:?}");

    // The chaos is visible in the flight recorder.
    let events = orpheus_observe::flight_snapshot();
    let respawns = events
        .iter()
        .filter(|e| e.category == "serve" && e.label == "worker.respawn")
        .count();
    let trips = events
        .iter()
        .filter(|e| e.category == "serve" && e.label == "breaker.open")
        .count();
    assert!(respawns > 0, "respawns must be flight-recorded");
    assert!(trips > 0, "breaker trips must be flight-recorded");
}

/// Flaky faults striking mid-batch: with dynamic batching on, a failed or
/// panicked coalesced run must degrade to per-request serving — every
/// coalesced request still resolves individually (rescued on the reference
/// path if its own retry also faults), no panic escapes, and the drain
/// stays clean.
#[test]
fn chaos_flaky_faults_mid_batch_still_resolve_every_request() {
    quiet_injected_panics();
    let network = faulty_batched_network(
        FaultMode::Flaky {
            per_mille: 250,
            seed: 7,
        },
        4,
    );
    let server = Arc::new(Server::start(
        network,
        ServerConfig {
            workers: 2,
            queue_depth: 64,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(1),
            max_batch: 4,
            batch_max_wait: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    ));

    const CLIENTS: usize = 6;
    const PER_CLIENT: usize = 80;
    const TOTAL: usize = CLIENTS * PER_CLIENT;

    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let server = Arc::clone(&server);
                scope.spawn(move || {
                    (0..PER_CLIENT)
                        .map(|k| match server.submit(input(c * 977 + k)) {
                            Ok(ticket) => ticket.wait(),
                            Err(e) => Err(e),
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread never panics"))
            .collect()
    });

    let drain = server.shutdown();
    let stats = server.stats();

    assert_eq!(outcomes.len(), TOTAL, "every request must resolve");
    let completed = outcomes.iter().filter(|o| o.is_ok()).count();
    let shed = outcomes
        .iter()
        .filter(|o| {
            matches!(
                o,
                Err(ServeError::Overloaded
                    | ServeError::ShuttingDown
                    | ServeError::DeadlineExpired)
            )
        })
        .count();
    let faulted = outcomes
        .iter()
        .filter(|o| matches!(o, Err(ServeError::Faulted(_))))
        .count();
    assert_eq!(completed + shed + faulted, TOTAL);
    // The per-request fallback retries each coalesced member on its own;
    // the reference twins bypass the fault wrappers, so nothing faults
    // through even when the fault hits mid-batch.
    assert_eq!(faulted, 0, "serial fallback + reference rescue holds");
    assert!(completed > 0);

    assert!(
        stats.batches > 0,
        "6 clients vs 2 workers with a 5ms linger must coalesce: {stats:?}"
    );
    assert!(stats.panics_isolated > 0, "chaos must inject panics");
    assert_eq!(drain.worker_panics, 0, "panic isolation must hold");
    assert!(drain.clean, "drain must finish clean: {drain:?}");
}

/// Deterministic breaker lifecycle on a single worker: `PanicFirst(1)`
/// layers each panic exactly once, so the breaker trips during the faulty
/// prefix, half-open-probes with zero cooldown, and closes once every
/// wrapped layer has healed.
#[test]
fn chaos_breaker_trips_then_half_open_recovers() {
    quiet_injected_panics();
    let network = faulty_network(FaultMode::PanicFirst(1));
    let server = Server::start(
        network,
        ServerConfig {
            workers: 1,
            queue_depth: 8,
            breaker_threshold: 1,
            breaker_cooldown: Duration::ZERO,
            ..ServerConfig::default()
        },
    );

    let mut rescued = 0;
    let mut primary = 0;
    for k in 0..24 {
        let reply = server.infer(input(k)).expect("every request completes");
        match reply.route {
            Route::Primary => primary += 1,
            Route::Reference => rescued += 1,
        }
    }
    let stats = server.stats();
    assert!(rescued > 0, "the faulty prefix is rescued via reference");
    assert!(primary > 0, "healed layers serve primary again");
    assert!(stats.breaker_trips >= 1, "panics must trip the breaker");
    assert!(
        stats.breaker_closes >= 1,
        "a half-open probe must close the breaker once layers heal: {stats:?}"
    );
    assert_eq!(
        server.breaker_state(),
        BreakerState::Closed,
        "breaker ends closed"
    );
    let drain = server.shutdown();
    assert_eq!(drain.worker_panics, 0);
    assert!(drain.clean);
}

/// While the breaker is open (long cooldown), traffic bypasses the broken
/// primary path entirely and is served by the reference session.
#[test]
fn chaos_open_breaker_routes_to_reference() {
    quiet_injected_panics();
    let network = faulty_network(FaultMode::Panic);
    let server = Server::start(
        network,
        ServerConfig {
            workers: 1,
            queue_depth: 8,
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_secs(3600),
            ..ServerConfig::default()
        },
    );

    for k in 0..6 {
        let reply = server.infer(input(k)).expect("reference path serves");
        assert_eq!(reply.route, Route::Reference);
    }
    let stats = server.stats();
    assert_eq!(stats.completed_reference, 6);
    assert_eq!(stats.completed_primary, 0);
    assert_eq!(
        stats.breaker_trips, 1,
        "one trip, then open absorbs traffic"
    );
    assert_eq!(
        stats.panics_isolated, 1,
        "only the tripping request touches the broken primary"
    );
    assert_eq!(server.breaker_state(), BreakerState::Open);
    let drain = server.shutdown();
    assert_eq!(drain.worker_panics, 0);
    assert!(drain.clean);
}
