//! The per-model circuit breaker: trip to the reference path, probe back.
//!
//! State machine (the classic three-state breaker, specialized for a server
//! that always has somewhere to degrade *to* — the reference-implementation
//! session from the robustness PR):
//!
//! ```text
//!            N consecutive primary failures
//!   Closed ───────────────────────────────► Open ──┐
//!     ▲                                       │    │ requests route to the
//!     │ probe succeeds        cooldown elapsed│    │ reference session
//!     │                                       ▼    ◄┘
//!     └────────────────────────────────── HalfOpen
//!                                             │ probe fails
//!                                             └──────────► Open (re-armed)
//! ```
//!
//! While `Open`, every request is served by the reference session. Once the
//! cooldown elapses, exactly one request is dispatched to the primary path
//! as a probe (`HalfOpen`); its outcome decides between `Closed` (healthy
//! again) and a re-armed `Open`. The breaker itself is time-driven but pure:
//! callers pass `now`, which keeps the state machine deterministic under
//! test.

use std::time::{Duration, Instant};

/// Where the breaker wants the next request executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// The planned session with the selected implementations.
    Primary,
    /// The degraded reference-implementation session.
    Reference,
}

/// Observable breaker state (for reports and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all traffic on the primary path.
    Closed,
    /// Tripped: all traffic on the reference path until the cooldown ends.
    Open,
    /// Probing: one request is out on the primary path; the rest stay on
    /// the reference path until it reports back.
    HalfOpen,
}

/// What a state-changing call did, so the server can count and record trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// No state change.
    None,
    /// The breaker tripped open (threshold reached, or a probe failed).
    Opened,
    /// A probe succeeded and the breaker closed.
    Closed,
}

#[derive(Debug, Clone, Copy)]
enum State {
    Closed,
    Open { since: Instant },
    HalfOpen,
}

/// Consecutive-failure circuit breaker with a probe cooldown.
#[derive(Debug)]
pub struct CircuitBreaker {
    state: State,
    consecutive_failures: u32,
    threshold: u32,
    cooldown: Duration,
}

impl CircuitBreaker {
    /// A breaker that opens after `threshold` consecutive primary failures
    /// and half-opens `cooldown` after tripping. A zero threshold is
    /// clamped to 1 (a breaker that can never trip shuts off the entire
    /// robustness layer, which is never what a caller wants).
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            state: State::Closed,
            consecutive_failures: 0,
            threshold: threshold.max(1),
            cooldown,
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        match self.state {
            State::Closed => BreakerState::Closed,
            State::Open { .. } => BreakerState::Open,
            State::HalfOpen => BreakerState::HalfOpen,
        }
    }

    /// Decides where the next request should run. May transition
    /// `Open → HalfOpen` when the cooldown has elapsed — the caller that
    /// receives [`Route::Primary`] out of an open breaker *is* the probe
    /// and must report back via `on_success`/`on_failure`.
    pub fn route(&mut self, now: Instant) -> Route {
        match self.state {
            State::Closed => Route::Primary,
            State::Open { since } if now.duration_since(since) >= self.cooldown => {
                self.state = State::HalfOpen;
                Route::Primary
            }
            State::Open { .. } => Route::Reference,
            // A probe is already in flight; everyone else stays degraded.
            State::HalfOpen => Route::Reference,
        }
    }

    /// Reports a successful primary execution.
    pub fn on_success(&mut self) -> Transition {
        match self.state {
            State::HalfOpen => {
                self.state = State::Closed;
                self.consecutive_failures = 0;
                Transition::Closed
            }
            State::Closed => {
                self.consecutive_failures = 0;
                Transition::None
            }
            // A request dispatched before the trip finished late; the
            // breaker already decided, ignore.
            State::Open { .. } => Transition::None,
        }
    }

    /// Reports a failed primary execution (error or isolated panic).
    pub fn on_failure(&mut self, now: Instant) -> Transition {
        match self.state {
            State::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.threshold {
                    self.state = State::Open { since: now };
                    Transition::Opened
                } else {
                    Transition::None
                }
            }
            State::HalfOpen => {
                // The probe failed: re-arm the cooldown.
                self.state = State::Open { since: now };
                Transition::Opened
            }
            State::Open { .. } => Transition::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn now() -> Instant {
        Instant::now()
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(3, Duration::from_secs(60));
        let t = now();
        assert_eq!(b.on_failure(t), Transition::None);
        assert_eq!(b.on_failure(t), Transition::None);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.on_failure(t), Transition::Opened);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.route(t), Route::Reference);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(2, Duration::from_secs(60));
        let t = now();
        b.on_failure(t);
        b.on_success();
        assert_eq!(b.on_failure(t), Transition::None, "streak was reset");
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_opens_after_cooldown_and_closes_on_probe_success() {
        let mut b = CircuitBreaker::new(1, Duration::from_millis(10));
        let t0 = now();
        assert_eq!(b.on_failure(t0), Transition::Opened);
        // Before the cooldown: degraded.
        assert_eq!(b.route(t0), Route::Reference);
        // After the cooldown: exactly one probe goes primary…
        let t1 = t0 + Duration::from_millis(20);
        assert_eq!(b.route(t1), Route::Primary);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // …while concurrent requests stay degraded…
        assert_eq!(b.route(t1), Route::Reference);
        // …and a successful probe closes the breaker.
        assert_eq!(b.on_success(), Transition::Closed);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.route(t1), Route::Primary);
    }

    #[test]
    fn failed_probe_rearms_the_cooldown() {
        let mut b = CircuitBreaker::new(1, Duration::from_millis(10));
        let t0 = now();
        b.on_failure(t0);
        let t1 = t0 + Duration::from_millis(20);
        assert_eq!(b.route(t1), Route::Primary, "probe dispatched");
        assert_eq!(
            b.on_failure(t1),
            Transition::Opened,
            "probe failure re-trips"
        );
        // The cooldown restarts from the probe failure, not the first trip.
        assert_eq!(b.route(t1 + Duration::from_millis(5)), Route::Reference);
        assert_eq!(b.route(t1 + Duration::from_millis(20)), Route::Primary);
    }

    #[test]
    fn zero_threshold_clamps_to_one() {
        let mut b = CircuitBreaker::new(0, Duration::from_secs(1));
        assert_eq!(b.on_failure(now()), Transition::Opened);
    }

    #[test]
    fn late_success_while_open_is_ignored() {
        let mut b = CircuitBreaker::new(1, Duration::from_secs(60));
        let t = now();
        b.on_failure(t);
        assert_eq!(b.on_success(), Transition::None);
        assert_eq!(b.state(), BreakerState::Open);
    }
}
