//! orpheus-serve: the fault-isolated concurrent serving core.
//!
//! Wraps a loaded [`orpheus::Network`] in a production-shaped serving loop:
//!
//! * a [`BoundedQueue`] intake that sheds load explicitly
//!   ([`ServeError::Overloaded`]) instead of growing without bound,
//! * per-request deadline budgets checked at enqueue and again before
//!   dispatch ([`ServeError::DeadlineExpired`]),
//! * worker threads with pre-planned sessions, `catch_unwind` panic
//!   isolation, and in-place [`orpheus::Session::reset`] respawn,
//! * a per-model [`CircuitBreaker`] that trips traffic onto the
//!   reference-implementation path and half-open-probes its way back,
//! * graceful, timeout-bounded drain on [`Server::shutdown`].
//!
//! ```no_run
//! use std::sync::Arc;
//! use orpheus::Engine;
//! use orpheus_models::{build_model, ModelKind};
//! use orpheus_serve::{Server, ServerConfig};
//!
//! let engine = Engine::builder().build().unwrap();
//! let network = Arc::new(engine.load(build_model(ModelKind::TinyCnn)).unwrap());
//! let server = Server::start(Arc::clone(&network), ServerConfig::default());
//! let input = orpheus_tensor::Tensor::zeros(network.input_dims());
//! let reply = server.infer(input).unwrap();
//! println!("served via {:?} in {:?}", reply.route, reply.total);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod breaker;
mod loadgen;
mod queue;
mod server;

pub use breaker::{BreakerState, CircuitBreaker, Route, Transition};
pub use loadgen::{run_load_gen, LoadGenConfig, LoadGenReport};
pub use queue::{BoundedQueue, PushError};
pub use server::{
    DrainReport, ServeError, ServeReply, ServeResult, Server, ServerConfig, StatsSnapshot, Ticket,
};
