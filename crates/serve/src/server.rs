//! The fault-isolated concurrent serving core.
//!
//! A [`Server`] owns a bounded intake queue and a pool of worker threads,
//! each holding a pre-planned [`Session`] over a shared [`Network`] (the
//! plan and weights live behind an `Arc`; each worker owns a private
//! activation arena). Robustness is wired at every layer:
//!
//! * **Load shedding** — the queue is bounded; a full queue rejects with
//!   [`ServeError::Overloaded`] at submit time instead of growing.
//! * **Deadlines** — a request's budget is checked at enqueue *and* again
//!   before dispatch; expired requests are shed, never run.
//! * **Panic isolation** — `Session::run` executes under `catch_unwind`; a
//!   poisoned worker responds with an error, re-arms its session via
//!   [`Session::reset`] (no replanning), and keeps serving.
//! * **Circuit breaker** — N consecutive primary failures trip the breaker
//!   open and traffic degrades to a reference-implementation session; a
//!   half-open probe schedule restores the primary path when it recovers.
//! * **Graceful drain** — [`Server::shutdown`] stops intake, finishes the
//!   backlog within a drain timeout, and force-sheds whatever remains.
//! * **Dynamic batching** — when the network was loaded with a batch
//!   ladder, a worker coalesces up to [`ServerConfig::max_batch`] queued
//!   requests into one bucketed session run (lingering at most
//!   [`ServerConfig::batch_max_wait`] for stragglers) and scatters the
//!   output rows back to the individual responders. A failed or panicked
//!   batched run degrades to per-request serving, so coalescing never
//!   weakens the isolation guarantees.
//!
//! Every shed, trip, respawn, and drain event lands in the always-on flight
//! recorder and (when recording is enabled) the metrics registry, so the
//! OpenMetrics export covers the serving layer out of the box.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use orpheus::{Network, Session};
use orpheus_observe as observe;
use orpheus_tensor::Tensor;

use crate::breaker::{CircuitBreaker, Route, Transition};
use crate::queue::{BoundedQueue, PushError};

/// Serving configuration; every knob has a production-shaped default.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads, each with a private pre-planned session.
    pub workers: usize,
    /// Intake queue bound; a full queue sheds with [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Deadline budget applied to requests submitted without an explicit
    /// one. `None` = no deadline.
    pub default_deadline: Option<Duration>,
    /// Consecutive primary failures before the circuit breaker trips.
    pub breaker_threshold: u32,
    /// How long the breaker stays open before half-opening a probe.
    pub breaker_cooldown: Duration,
    /// How long [`Server::shutdown`] waits for the backlog before
    /// force-shedding the remainder.
    pub drain_timeout: Duration,
    /// Most requests a worker coalesces into one batched session run.
    ///
    /// Effective only when the network was loaded with a batch ladder
    /// (`Engine::builder().max_batch(..)`); the server clamps this to what
    /// the network can actually serve. `1` (the default) disables
    /// coalescing entirely — every request runs alone, exactly as before.
    pub max_batch: usize,
    /// How long a worker lingers for more requests after picking up the
    /// first one of a batch. Bounds the latency cost of coalescing: a lone
    /// request waits at most this long, a full batch not at all.
    pub batch_max_wait: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_depth: 64,
            default_deadline: None,
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_millis(250),
            drain_timeout: Duration::from_secs(5),
            max_batch: 1,
            batch_max_wait: Duration::from_micros(200),
        }
    }
}

/// Why a request did not produce an output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded queue was full; the request was shed at enqueue.
    Overloaded,
    /// The deadline budget expired before the request could run.
    DeadlineExpired,
    /// The server is draining; intake is closed.
    ShuttingDown,
    /// Execution failed on both the primary and the reference path.
    Faulted(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "queue full: request shed"),
            ServeError::DeadlineExpired => write!(f, "deadline expired before execution"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Faulted(msg) => write!(f, "execution faulted: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A completed inference, with where and how it ran.
#[derive(Debug, Clone)]
pub struct ServeReply {
    /// The model output.
    pub output: Tensor,
    /// Which execution path served the request.
    pub route: Route,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// End-to-end time from enqueue to response.
    pub total: Duration,
}

/// The outcome every submitted request eventually resolves to.
pub type ServeResult = Result<ServeReply, ServeError>;

/// A handle to one in-flight request.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<ServeResult>,
}

impl Ticket {
    /// Blocks until the request resolves. Every accepted request resolves:
    /// completion, shed, fallback, or fault — a worker panic cannot leave
    /// the ticket dangling.
    pub fn wait(self) -> ServeResult {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(ServeError::Faulted("response channel dropped".into())))
    }
}

struct Request {
    input: Tensor,
    deadline: Option<Instant>,
    enqueued: Instant,
    responder: Sender<ServeResult>,
}

/// Monotonic serving counters, updated lock-free by workers and callers.
#[derive(Debug, Default)]
pub struct ServerStats {
    completed_primary: AtomicU64,
    completed_reference: AtomicU64,
    shed_overload: AtomicU64,
    shed_deadline: AtomicU64,
    shed_shutdown: AtomicU64,
    faulted: AtomicU64,
    exec_errors: AtomicU64,
    panics_isolated: AtomicU64,
    respawns: AtomicU64,
    breaker_trips: AtomicU64,
    breaker_closes: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
}

/// A point-in-time copy of [`ServerStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests completed on the primary (planned) path.
    pub completed_primary: u64,
    /// Requests completed on the reference path (breaker open, or rescued
    /// by the request-level fallback retry).
    pub completed_reference: u64,
    /// Requests shed because the queue was full.
    pub shed_overload: u64,
    /// Requests shed because their deadline expired.
    pub shed_deadline: u64,
    /// Requests shed because the server was draining.
    pub shed_shutdown: u64,
    /// Requests that failed on both paths.
    pub faulted: u64,
    /// Primary execution errors observed (before any rescue).
    pub exec_errors: u64,
    /// Panics caught by worker isolation.
    pub panics_isolated: u64,
    /// Session re-arms after a caught panic.
    pub respawns: u64,
    /// Circuit-breaker trips (including failed probes re-tripping).
    pub breaker_trips: u64,
    /// Circuit-breaker half-open probes that closed the breaker.
    pub breaker_closes: u64,
    /// Coalesced session runs that served two or more requests at once.
    pub batches: u64,
    /// Requests served through a coalesced (multi-request) run.
    pub batched_requests: u64,
}

impl StatsSnapshot {
    /// Total requests that received a terminal response.
    pub fn resolved(&self) -> u64 {
        self.completed_primary
            + self.completed_reference
            + self.shed_overload
            + self.shed_deadline
            + self.shed_shutdown
            + self.faulted
    }

    /// Completions across both routes.
    pub fn completed(&self) -> u64 {
        self.completed_primary + self.completed_reference
    }
}

impl ServerStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            completed_primary: self.completed_primary.load(Ordering::Relaxed),
            completed_reference: self.completed_reference.load(Ordering::Relaxed),
            shed_overload: self.shed_overload.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            shed_shutdown: self.shed_shutdown.load(Ordering::Relaxed),
            faulted: self.faulted.load(Ordering::Relaxed),
            exec_errors: self.exec_errors.load(Ordering::Relaxed),
            panics_isolated: self.panics_isolated.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            breaker_closes: self.breaker_closes.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
        }
    }
}

/// How [`Server::shutdown`] went.
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    /// True when the backlog drained in time and every worker exited
    /// normally: nothing was force-shed and no worker thread had died.
    pub clean: bool,
    /// Requests force-shed with [`ServeError::ShuttingDown`] after the
    /// drain timeout.
    pub shed: usize,
    /// Worker threads that terminated by panic instead of joining cleanly.
    /// Always 0 unless panic isolation itself is broken.
    pub worker_panics: usize,
    /// Wall time the drain took (including joining in-flight work).
    pub waited: Duration,
}

struct Shared {
    network: Arc<Network>,
    queue: BoundedQueue<Request>,
    breaker: Mutex<CircuitBreaker>,
    stats: ServerStats,
    accepting: AtomicBool,
    in_flight: AtomicUsize,
    /// Requests a worker may coalesce per run: `config.max_batch` clamped
    /// to the network's planned batch headroom. 1 = no coalescing.
    coalesce: usize,
    /// The network's batch-bucket ladder in request units (bucket batch
    /// over the per-request batch), ascending. Coalesced runs happen only
    /// at these exact sizes — padding a half-full bucket wastes compute on
    /// rows that are sliced away.
    bucket_rungs: Vec<usize>,
    batch_wait: Duration,
}

impl Shared {
    fn breaker_lock(&self) -> std::sync::MutexGuard<'_, CircuitBreaker> {
        self.breaker.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Largest coalescible run size (a planned rung) not exceeding
    /// `pending` requests; 1 when no multi-request rung fits.
    fn bucket_fit(&self, pending: usize) -> usize {
        let cap = pending.min(self.coalesce);
        self.bucket_rungs
            .iter()
            .rev()
            .find(|&&rung| rung <= cap)
            .copied()
            .unwrap_or(1)
    }
}

/// A concurrent, fault-isolated model server over one loaded [`Network`].
pub struct Server {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    config: ServerConfig,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("model", &self.shared.network.name())
            .field("config", &self.config)
            .finish()
    }
}

impl Server {
    /// Starts the worker pool: `config.workers` threads, each pre-planning
    /// its private session before intake opens (cold-start work happens
    /// here, not on the first request).
    pub fn start(network: Arc<Network>, config: ServerConfig) -> Server {
        // How many base-shaped requests fit one planned bucket run: the
        // network's max batch over its per-request batch, clamped by config.
        // The read-only plan summary is the supported view of the ladder.
        let summary = network.plan_summary();
        let base_batch = summary.input_dims.first().copied().unwrap_or(1).max(1);
        let mut bucket_rungs: Vec<usize> = summary
            .batch_buckets
            .iter()
            .map(|bucket| bucket.batch)
            .filter(|b| b.is_multiple_of(base_batch))
            .map(|b| b / base_batch)
            .filter(|&rung| rung >= 1)
            .collect();
        if bucket_rungs.is_empty() {
            bucket_rungs.push(1);
        }
        let coalesce = config
            .max_batch
            .max(1)
            .min(bucket_rungs.last().copied().unwrap_or(1));
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_depth),
            breaker: Mutex::new(CircuitBreaker::new(
                config.breaker_threshold,
                config.breaker_cooldown,
            )),
            stats: ServerStats::default(),
            accepting: AtomicBool::new(true),
            in_flight: AtomicUsize::new(0),
            coalesce,
            bucket_rungs,
            batch_wait: config.batch_max_wait,
            network,
        });
        let workers = (0..config.workers.max(1))
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("orpheus-serve-{id}"))
                    .spawn(move || worker_main(&shared, id))
                    .expect("spawn serve worker")
            })
            .collect();
        observe::flight_record(
            "serve",
            "start",
            format!(
                "{}: {} worker(s), queue depth {}, batch up to {} request(s), gemm {}",
                shared.network.name(),
                config.workers.max(1),
                shared.queue.capacity(),
                shared.coalesce,
                summary.gemm_isa
            ),
        );
        Server {
            shared,
            workers: Mutex::new(workers),
            config,
        }
    }

    /// The served model's name.
    pub fn model(&self) -> &str {
        self.shared.network.name()
    }

    /// Requests currently queued (excludes in-flight).
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Current serving counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// The breaker's current state.
    pub fn breaker_state(&self) -> crate::breaker::BreakerState {
        self.shared.breaker_lock().state()
    }

    /// Submits a request with the configured default deadline.
    ///
    /// # Errors
    ///
    /// Sheds immediately with [`ServeError::Overloaded`] (queue full),
    /// [`ServeError::DeadlineExpired`] (zero budget), or
    /// [`ServeError::ShuttingDown`] (drain in progress).
    pub fn submit(&self, input: Tensor) -> Result<Ticket, ServeError> {
        self.submit_with_deadline(input, self.config.default_deadline)
    }

    /// Submits a request with an explicit deadline budget (`None` = no
    /// deadline), overriding the configured default.
    ///
    /// # Errors
    ///
    /// See [`Server::submit`].
    pub fn submit_with_deadline(
        &self,
        input: Tensor,
        budget: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        if !self.shared.accepting.load(Ordering::Acquire) {
            self.shared
                .stats
                .shed_shutdown
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::ShuttingDown);
        }
        let now = Instant::now();
        let deadline = budget.map(|b| now + b);
        // Enqueue-side deadline check: a zero budget is dead on arrival.
        if deadline.is_some_and(|d| d <= now) {
            self.shared
                .stats
                .shed_deadline
                .fetch_add(1, Ordering::Relaxed);
            observe::counter_add("serve.deadline_expired", 1);
            observe::flight_record(
                "serve",
                "deadline.expired",
                format!("{}: expired at enqueue", self.model()),
            );
            return Err(ServeError::DeadlineExpired);
        }
        let (tx, rx) = channel();
        let request = Request {
            input,
            deadline,
            enqueued: now,
            responder: tx,
        };
        match self.shared.queue.try_push(request) {
            Ok(()) => Ok(Ticket { rx }),
            Err(PushError::Full(_)) => {
                self.shared
                    .stats
                    .shed_overload
                    .fetch_add(1, Ordering::Relaxed);
                observe::counter_add("serve.shed", 1);
                observe::flight_record(
                    "serve",
                    "shed",
                    format!(
                        "{}: queue full (depth {})",
                        self.model(),
                        self.shared.queue.capacity()
                    ),
                );
                Err(ServeError::Overloaded)
            }
            Err(PushError::Closed(_)) => {
                self.shared
                    .stats
                    .shed_shutdown
                    .fetch_add(1, Ordering::Relaxed);
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Submits a request and blocks for its outcome.
    pub fn infer(&self, input: Tensor) -> ServeResult {
        self.submit(input)?.wait()
    }

    /// Gracefully drains and stops the server: intake closes immediately,
    /// workers finish the backlog, and whatever is still queued when the
    /// drain timeout expires is shed with [`ServeError::ShuttingDown`].
    /// In-flight requests always run to completion.
    ///
    /// Idempotent: a second call returns an empty clean report.
    pub fn shutdown(&self) -> DrainReport {
        let start = Instant::now();
        let first = self.shared.accepting.swap(false, Ordering::AcqRel);
        self.shared.queue.close();
        if first {
            observe::flight_record(
                "serve",
                "drain.begin",
                format!("{}: {} queued", self.model(), self.shared.queue.len()),
            );
        }
        let deadline = start + self.config.drain_timeout;
        while !(self.shared.queue.is_empty() && self.shared.in_flight.load(Ordering::Acquire) == 0)
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_micros(500));
        }
        // Timeout-bounded drain: everything still queued is shed; the
        // responses make the shutdown visible to waiting callers.
        let mut shed = 0;
        for request in self.shared.queue.drain() {
            let _ = request.responder.send(Err(ServeError::ShuttingDown));
            self.shared
                .stats
                .shed_shutdown
                .fetch_add(1, Ordering::Relaxed);
            observe::counter_add("serve.shed", 1);
            shed += 1;
        }
        // Workers exit once the queue is closed and empty; join bounds the
        // in-flight work. A join error means a panic escaped isolation —
        // surfaced in the report, never swallowed.
        let handles: Vec<JoinHandle<()>> = {
            let mut workers = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
            workers.drain(..).collect()
        };
        let worker_panics = handles
            .into_iter()
            .map(|h| h.join())
            .filter(Result::is_err)
            .count();
        let waited = start.elapsed();
        let clean = shed == 0 && worker_panics == 0;
        if first {
            observe::flight_record(
                "serve",
                "drain.end",
                format!(
                    "{}: clean={clean} shed={shed} worker_panics={worker_panics} in {waited:?}",
                    self.model()
                ),
            );
        }
        DrainReport {
            clean,
            shed,
            worker_panics,
            waited,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Belt and braces: a dropped server still stops its workers. The
        // explicit shutdown() path is the one that reports.
        self.shared.accepting.store(false, Ordering::Release);
        self.shared.queue.close();
        let handles: Vec<JoinHandle<()>> = {
            let mut workers = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
            workers.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// What one isolated execution attempt produced.
enum Attempt {
    Ok(Tensor),
    Error(String),
    Panicked(String),
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one inference under `catch_unwind`. A panic is converted into data;
/// the caller is responsible for re-arming the session afterwards.
fn isolated_run(session: &mut Session, input: &Tensor) -> Attempt {
    match catch_unwind(AssertUnwindSafe(|| session.run(input).cloned())) {
        Ok(Ok(output)) => Attempt::Ok(output),
        Ok(Err(e)) => Attempt::Error(e.to_string()),
        Err(payload) => Attempt::Panicked(panic_message(payload.as_ref())),
    }
}

/// Per-worker state: the primary session plus a lazily-built reference
/// session for degraded routes.
struct Worker<'a> {
    shared: &'a Shared,
    id: usize,
    session: Session,
    reference: Option<Session>,
}

impl Worker<'_> {
    /// Records a caught panic and re-arms the faulted session in place —
    /// the plan is untouched, only the arena invariants are restored.
    fn respawn(&mut self, which: Route, message: &str) {
        self.shared
            .stats
            .panics_isolated
            .fetch_add(1, Ordering::Relaxed);
        self.shared.stats.respawns.fetch_add(1, Ordering::Relaxed);
        observe::counter_add("serve.worker_respawn", 1);
        observe::flight_record(
            "serve",
            "worker.respawn",
            format!(
                "worker {} ({:?} route) isolated panic, session re-armed: {}",
                self.id,
                which,
                observe::truncate(message, 120)
            ),
        );
        match which {
            Route::Primary => self.session.reset(),
            Route::Reference => {
                if let Some(reference) = self.reference.as_mut() {
                    reference.reset();
                }
            }
        }
    }

    /// Reports a primary failure to the breaker, recording a trip.
    fn breaker_failure(&mut self) {
        let transition = self.shared.breaker_lock().on_failure(Instant::now());
        if transition == Transition::Opened {
            self.shared
                .stats
                .breaker_trips
                .fetch_add(1, Ordering::Relaxed);
            observe::counter_add("serve.breaker_open", 1);
            observe::flight_record(
                "serve",
                "breaker.open",
                format!(
                    "{}: tripped to the reference path",
                    self.shared.network.name()
                ),
            );
        }
    }

    /// Runs the request on the reference session (breaker-open traffic and
    /// the request-level rescue after a primary failure).
    fn serve_reference(&mut self, input: &Tensor) -> Attempt {
        let reference = self
            .reference
            .get_or_insert_with(|| self.shared.network.reference_session());
        let attempt = isolated_run(reference, input);
        if let Attempt::Panicked(msg) = &attempt {
            let msg = msg.clone();
            self.respawn(Route::Reference, &msg);
        }
        attempt
    }

    fn serve_one(&mut self, request: Request) {
        let now = Instant::now();
        // Dispatch-side deadline check: a request that expired while queued
        // is shed, never run.
        if request.deadline.is_some_and(|d| now >= d) {
            self.shared
                .stats
                .shed_deadline
                .fetch_add(1, Ordering::Relaxed);
            observe::counter_add("serve.deadline_expired", 1);
            observe::flight_record(
                "serve",
                "deadline.expired",
                format!(
                    "{}: expired after {:?} queued",
                    self.shared.network.name(),
                    now.duration_since(request.enqueued)
                ),
            );
            let _ = request.responder.send(Err(ServeError::DeadlineExpired));
            return;
        }
        let queue_wait = now.duration_since(request.enqueued);
        observe::histogram_record("serve.queue_wait_us", queue_wait.as_micros() as u64);

        let route = self.shared.breaker_lock().route(now);
        let (attempt, served_route) = match route {
            Route::Primary => match isolated_run(&mut self.session, &request.input) {
                Attempt::Ok(output) => {
                    let transition = self.shared.breaker_lock().on_success();
                    if transition == Transition::Closed {
                        self.shared
                            .stats
                            .breaker_closes
                            .fetch_add(1, Ordering::Relaxed);
                        observe::counter_add("serve.breaker_close", 1);
                        observe::flight_record(
                            "serve",
                            "breaker.close",
                            format!(
                                "{}: probe succeeded, primary path restored",
                                self.shared.network.name()
                            ),
                        );
                    }
                    (Attempt::Ok(output), Route::Primary)
                }
                Attempt::Error(e) => {
                    self.shared
                        .stats
                        .exec_errors
                        .fetch_add(1, Ordering::Relaxed);
                    self.breaker_failure();
                    // Request-level rescue: one retry on the reference path
                    // so the caller sees a completion, not a 500.
                    let _ = e;
                    (self.serve_reference(&request.input), Route::Reference)
                }
                Attempt::Panicked(msg) => {
                    self.respawn(Route::Primary, &msg);
                    self.breaker_failure();
                    (self.serve_reference(&request.input), Route::Reference)
                }
            },
            Route::Reference => (self.serve_reference(&request.input), Route::Reference),
        };

        let result = match attempt {
            Attempt::Ok(output) => {
                match served_route {
                    Route::Primary => {
                        self.shared
                            .stats
                            .completed_primary
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    Route::Reference => {
                        self.shared
                            .stats
                            .completed_reference
                            .fetch_add(1, Ordering::Relaxed);
                        observe::counter_add("serve.fallback", 1);
                    }
                }
                let total = request.enqueued.elapsed();
                observe::histogram_record("serve.latency_us", total.as_micros() as u64);
                Ok(ServeReply {
                    output,
                    route: served_route,
                    queue_wait,
                    total,
                })
            }
            Attempt::Error(e) => {
                self.shared.stats.faulted.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Faulted(e))
            }
            Attempt::Panicked(msg) => {
                self.shared.stats.faulted.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Faulted(format!("panic isolated: {msg}")))
            }
        };
        let _ = request.responder.send(result);
    }

    /// Serves a coalesced intake batch: compatible requests are stacked
    /// into one bucketed session run and the output rows scattered back to
    /// their responders; anything that cannot batch (mixed shapes, breaker
    /// open, or a failed/panicked batched run) degrades to the per-request
    /// [`serve_one`] path, so every coalesced request still resolves with
    /// its own routing, rescue, and deadline handling.
    ///
    /// [`serve_one`]: Worker::serve_one
    fn serve_batch(&mut self, mut batch: Vec<Request>) {
        if batch.len() == 1 {
            return self.serve_one(batch.pop().expect("len checked"));
        }
        let now = Instant::now();
        // Expired requests are shed through `serve_one`'s dispatch-side
        // check; only live ones are worth stacking.
        let (mut live, expired): (Vec<Request>, Vec<Request>) = batch
            .drain(..)
            .partition(|r| r.deadline.is_none_or(|d| now < d));
        for request in expired {
            self.serve_one(request);
        }
        let base = self.shared.network.input_dims().to_vec();
        let uniform = live.iter().all(|r| r.input.dims() == base.as_slice());
        // Coalesced runs happen only at exact planned rungs: padding a
        // half-full bucket run wastes compute on rows that are sliced
        // away, so the intake batch is chunked into the largest rungs
        // that fit and any tail is served serially below.
        while uniform
            && live.len() > 1
            && self.shared.breaker_lock().route(Instant::now()) == Route::Primary
        {
            let n = self.shared.bucket_fit(live.len());
            if n <= 1 {
                break;
            }
            let chunk: Vec<Request> = live.drain(..n).collect();
            self.run_coalesced(chunk, &base);
        }
        for request in live {
            self.serve_one(request);
        }
    }

    /// One stacked session run over `chunk` (all inputs base-shaped and
    /// live, `chunk.len()` a planned bucket rung), scattering the output
    /// rows back to their responders. A failed or panicked run degrades
    /// every chunked request to [`serve_one`], so each still resolves
    /// with its own routing, rescue, and deadline handling.
    ///
    /// [`serve_one`]: Worker::serve_one
    fn run_coalesced(&mut self, live: Vec<Request>, base: &[usize]) {
        let n = live.len();
        let now = Instant::now();
        let coalesce_started = now;
        let mut dims = base.to_vec();
        dims[0] *= n;
        let mut data = Vec::with_capacity(dims.iter().product());
        for request in &live {
            data.extend_from_slice(request.input.as_slice());
        }
        let stacked = match Tensor::from_vec(data, &dims) {
            Ok(t) => t,
            Err(_) => {
                // Unreachable with shape-checked inputs; degrade, don't drop.
                for request in live {
                    self.serve_one(request);
                }
                return;
            }
        };
        observe::histogram_record("serve.batch.occupancy", n as u64);

        match isolated_run(&mut self.session, &stacked) {
            Attempt::Ok(output) => {
                let transition = self.shared.breaker_lock().on_success();
                if transition == Transition::Closed {
                    self.shared
                        .stats
                        .breaker_closes
                        .fetch_add(1, Ordering::Relaxed);
                    observe::counter_add("serve.breaker_close", 1);
                }
                self.shared.stats.batches.fetch_add(1, Ordering::Relaxed);
                self.shared
                    .stats
                    .batched_requests
                    .fetch_add(n as u64, Ordering::Relaxed);
                observe::counter_add("serve.batch.runs", 1);
                observe::counter_add("serve.batch.requests", n as u64);
                observe::histogram_record(
                    "serve.batch.run_us",
                    coalesce_started.elapsed().as_micros() as u64,
                );
                let per_output = output.len() / n;
                let mut out_dims = output.dims().to_vec();
                out_dims[0] /= n;
                for (i, request) in live.into_iter().enumerate() {
                    let rows = output.as_slice()[i * per_output..(i + 1) * per_output].to_vec();
                    let result = match Tensor::from_vec(rows, &out_dims) {
                        Ok(slice) => {
                            self.shared
                                .stats
                                .completed_primary
                                .fetch_add(1, Ordering::Relaxed);
                            let queue_wait = now.duration_since(request.enqueued);
                            observe::histogram_record(
                                "serve.queue_wait_us",
                                queue_wait.as_micros() as u64,
                            );
                            let total = request.enqueued.elapsed();
                            observe::histogram_record("serve.latency_us", total.as_micros() as u64);
                            Ok(ServeReply {
                                output: slice,
                                route: Route::Primary,
                                queue_wait,
                                total,
                            })
                        }
                        Err(e) => {
                            self.shared.stats.faulted.fetch_add(1, Ordering::Relaxed);
                            Err(ServeError::Faulted(format!(
                                "batched output scatter failed: {e:?}"
                            )))
                        }
                    };
                    let _ = request.responder.send(result);
                }
            }
            Attempt::Error(e) => {
                self.shared
                    .stats
                    .exec_errors
                    .fetch_add(1, Ordering::Relaxed);
                self.breaker_failure();
                observe::counter_add("serve.batch.fallback", 1);
                observe::flight_record(
                    "serve",
                    "batch.fallback",
                    format!(
                        "{}: batched run of {n} failed ({}); serving serially",
                        self.shared.network.name(),
                        observe::truncate(&e, 120)
                    ),
                );
                for request in live {
                    self.serve_one(request);
                }
            }
            Attempt::Panicked(msg) => {
                self.respawn(Route::Primary, &msg);
                self.breaker_failure();
                observe::counter_add("serve.batch.fallback", 1);
                observe::flight_record(
                    "serve",
                    "batch.fallback",
                    format!(
                        "{}: batched run of {n} panicked; serving serially",
                        self.shared.network.name()
                    ),
                );
                for request in live {
                    self.serve_one(request);
                }
            }
        }
    }
}

fn worker_main(shared: &Shared, id: usize) {
    let mut worker = Worker {
        shared,
        id,
        session: shared.network.session(),
        reference: None,
    };
    loop {
        let batch = shared.queue.pop_batch(shared.coalesce, shared.batch_wait);
        if batch.is_empty() {
            break;
        }
        shared.in_flight.fetch_add(batch.len(), Ordering::AcqRel);
        let served = batch.len();
        worker.serve_batch(batch);
        shared.in_flight.fetch_sub(served, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orpheus::Engine;
    use orpheus_models::{build_model, ModelKind};

    fn tiny_network() -> Arc<Network> {
        Arc::new(
            Engine::builder()
                .build()
                .unwrap()
                .load(build_model(ModelKind::TinyCnn))
                .unwrap(),
        )
    }

    fn input(k: usize) -> Tensor {
        Tensor::from_fn(&[1, 3, 8, 8], move |i| ((i + k) % 13) as f32 * 0.1)
    }

    #[test]
    fn serves_and_matches_direct_run() {
        let network = tiny_network();
        let server = Server::start(Arc::clone(&network), ServerConfig::default());
        for k in 0..8 {
            let reply = server.infer(input(k)).unwrap();
            assert_eq!(reply.route, Route::Primary);
            let expected = network.run(&input(k)).unwrap();
            assert_eq!(reply.output.as_slice(), expected.as_slice());
        }
        let report = server.shutdown();
        assert!(report.clean, "{report:?}");
        assert_eq!(report.worker_panics, 0);
        assert_eq!(server.stats().completed_primary, 8);
    }

    #[test]
    fn zero_budget_is_shed_at_enqueue() {
        let server = Server::start(tiny_network(), ServerConfig::default());
        let err = server
            .submit_with_deadline(input(0), Some(Duration::ZERO))
            .unwrap_err();
        assert_eq!(err, ServeError::DeadlineExpired);
        assert_eq!(server.stats().shed_deadline, 1);
        server.shutdown();
    }

    #[test]
    fn overload_sheds_instead_of_growing() {
        let network = tiny_network();
        let server = Arc::new(Server::start(
            network,
            ServerConfig {
                workers: 1,
                queue_depth: 1,
                ..ServerConfig::default()
            },
        ));
        let total = 800;
        let outcomes: Vec<ServeResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|c| {
                    let server = Arc::clone(&server);
                    scope.spawn(move || {
                        (0..total / 8)
                            .map(|k| match server.submit(input(c * 1000 + k)) {
                                Ok(ticket) => ticket.wait(),
                                Err(e) => Err(e),
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(outcomes.len(), total, "every request resolves");
        let shed = outcomes
            .iter()
            .filter(|o| matches!(o, Err(ServeError::Overloaded)))
            .count();
        let completed = outcomes.iter().filter(|o| o.is_ok()).count();
        assert!(completed > 0, "some requests complete");
        assert!(
            shed > 0,
            "8 producers vs 1 worker with queue depth 1 must shed"
        );
        assert_eq!(server.stats().shed_overload as usize, shed);
        let report = server.shutdown();
        assert_eq!(report.worker_panics, 0);
    }

    #[test]
    fn shutdown_closes_intake_and_drains_backlog() {
        let network = tiny_network();
        let server = Server::start(
            network,
            ServerConfig {
                workers: 2,
                queue_depth: 64,
                ..ServerConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..32).map(|k| server.submit(input(k)).unwrap()).collect();
        let report = server.shutdown();
        assert!(report.clean, "{report:?}");
        for ticket in tickets {
            assert!(ticket.wait().is_ok(), "backlog finishes during drain");
        }
        assert_eq!(
            server.submit(input(0)).unwrap_err(),
            ServeError::ShuttingDown
        );
        // Idempotent second shutdown.
        let again = server.shutdown();
        assert!(again.clean);
        assert_eq!(again.shed, 0);
    }

    #[test]
    fn tiny_drain_timeout_sheds_backlog_but_resolves_everything() {
        let network = tiny_network();
        let server = Server::start(
            network,
            ServerConfig {
                workers: 1,
                queue_depth: 64,
                drain_timeout: Duration::ZERO,
                ..ServerConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..64).map(|k| server.submit(input(k)).unwrap()).collect();
        let report = server.shutdown();
        assert_eq!(report.worker_panics, 0);
        let mut shut = 0;
        for ticket in tickets {
            match ticket.wait() {
                Ok(_) => {}
                Err(ServeError::ShuttingDown) => shut += 1,
                Err(other) => panic!("unexpected outcome: {other}"),
            }
        }
        assert_eq!(shut, report.shed, "every forced shed resolved a ticket");
    }

    fn batched_network(max_batch: usize) -> Arc<Network> {
        Arc::new(
            Engine::builder()
                .max_batch(max_batch)
                .build()
                .unwrap()
                .load(build_model(ModelKind::TinyCnn))
                .unwrap(),
        )
    }

    #[test]
    fn dynamic_batching_coalesces_and_matches_per_request_outputs() {
        let network = batched_network(4);
        let server = Server::start(
            Arc::clone(&network),
            ServerConfig {
                workers: 1,
                max_batch: 4,
                batch_max_wait: Duration::from_millis(20),
                ..ServerConfig::default()
            },
        );
        let tickets: Vec<(usize, Ticket)> = (0..16)
            .map(|k| (k, server.submit(input(k)).unwrap()))
            .collect();
        for (k, ticket) in tickets {
            let reply = ticket.wait().unwrap();
            assert_eq!(reply.route, Route::Primary);
            let expected = network.run(&input(k)).unwrap();
            assert_eq!(reply.output.dims(), expected.dims());
            assert_eq!(
                reply.output.as_slice(),
                expected.as_slice(),
                "request {k}: batched output must be bit-identical to a solo run"
            );
        }
        let stats = server.stats();
        assert!(
            stats.batches >= 1,
            "16 requests vs 1 worker with a 20ms linger must coalesce: {stats:?}"
        );
        assert_eq!(stats.completed(), 16);
        let report = server.shutdown();
        assert!(report.clean, "{report:?}");
    }

    #[test]
    fn max_batch_one_never_coalesces() {
        let network = batched_network(4);
        let server = Server::start(
            network,
            ServerConfig {
                workers: 1,
                max_batch: 1,
                ..ServerConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..8).map(|k| server.submit(input(k)).unwrap()).collect();
        for ticket in tickets {
            assert!(ticket.wait().is_ok());
        }
        let stats = server.stats();
        assert_eq!(stats.batches, 0);
        assert_eq!(stats.batched_requests, 0);
        server.shutdown();
    }

    #[test]
    fn session_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Session>();
        assert_send::<Server>();
        assert_send::<Ticket>();
    }
}
