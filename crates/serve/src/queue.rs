//! A bounded multi-producer multi-consumer queue with explicit rejection.
//!
//! The serving core's intake: producers (caller threads) `try_push` and are
//! told *immediately* when the queue is full — load shedding is a return
//! value, never silent unbounded growth — while consumers (inference
//! workers) block on `pop` until work arrives or the queue is closed for
//! drain.
//!
//! `std::sync::mpsc` is single-consumer and its bounded variant blocks
//! producers instead of rejecting them, so the queue is built directly on a
//! `Mutex<VecDeque>` + `Condvar`. All operations tolerate lock poisoning
//! (a panicking worker must never wedge intake), which the serving layer
//! relies on for its panic-isolation guarantee.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Why a `try_push` was rejected; the item comes back to the caller.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity — shed the request.
    Full(T),
    /// The queue was closed for shutdown — reject new intake.
    Closed(T),
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue: `try_push` rejects at capacity, `pop` blocks.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues `item`, or hands it back when the queue is full or closed.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity (the shed path), [`PushError::Closed`]
    /// after [`BoundedQueue::close`].
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is open and empty.
    /// Returns `None` once the queue is closed *and* drained — the consumer
    /// exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Dequeues up to `max` items as one batch: blocks (like [`pop`]) for
    /// the first item, then greedily takes whatever is already queued and —
    /// if still under `max` — lingers up to `wait` for more to coalesce.
    ///
    /// The linger is bounded by `wait` from the moment the first item
    /// arrived, so batching adds at most `wait` to a lone request's latency
    /// and *nothing* to a full batch's. Returns an empty vec once the queue
    /// is closed *and* drained — the consumer exit signal.
    ///
    /// [`pop`]: BoundedQueue::pop
    pub fn pop_batch(&self, max: usize, wait: Duration) -> Vec<T> {
        let mut out = Vec::new();
        let mut inner = self.lock();
        // Block for the first item, exactly like `pop`.
        loop {
            if let Some(item) = inner.items.pop_front() {
                out.push(item);
                break;
            }
            if inner.closed {
                return out;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if max <= 1 {
            return out;
        }
        let deadline = Instant::now() + wait;
        loop {
            while out.len() < max {
                match inner.items.pop_front() {
                    Some(item) => out.push(item),
                    None => break,
                }
            }
            if out.len() >= max || inner.closed {
                return out;
            }
            let now = Instant::now();
            if now >= deadline {
                return out;
            }
            let (guard, _timed_out) = self
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
    }

    /// Closes intake: subsequent `try_push` calls are rejected, blocked
    /// `pop` callers wake, and consumers exit once the backlog drains.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Removes and returns everything still queued (the forced-shed path
    /// when a drain timeout expires).
    pub fn drain(&self) -> Vec<T> {
        self.lock().items.drain(..).collect()
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// Whether intake has been closed.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_hands_the_item_back() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn close_rejects_intake_but_drains_backlog() {
        let q = BoundedQueue::new(8);
        q.try_push(1).unwrap();
        q.close();
        assert!(matches!(q.try_push(2), Err(PushError::Closed(2))));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None, "closed+empty pops None");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert!(matches!(q.try_push(2), Err(PushError::Full(2))));
    }

    #[test]
    fn pop_batch_takes_what_is_queued_up_to_max() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let batch = q.pop_batch(3, Duration::ZERO);
        assert_eq!(batch, vec![0, 1, 2]);
        let rest = q.pop_batch(8, Duration::ZERO);
        assert_eq!(rest, vec![3, 4]);
    }

    #[test]
    fn pop_batch_returns_empty_once_closed_and_drained() {
        let q = BoundedQueue::<u32>::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.pop_batch(4, Duration::ZERO), vec![7]);
        assert!(q.pop_batch(4, Duration::from_millis(50)).is_empty());
    }

    #[test]
    fn pop_batch_lingers_for_late_arrivals() {
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(1).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                q.try_push(2).unwrap();
            })
        };
        let batch = q.pop_batch(2, Duration::from_secs(2));
        producer.join().unwrap();
        assert_eq!(batch, vec![1, 2], "late arrival joins within the linger");
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Give consumers a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        for c in consumers {
            assert_eq!(c.join().unwrap(), None);
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Arc::new(BoundedQueue::new(16));
        let produced = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let consumed = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                let consumed = Arc::clone(&consumed);
                std::thread::spawn(move || {
                    while q.pop().is_some() {
                        consumed.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|t| {
                let q = Arc::clone(&q);
                let produced = Arc::clone(&produced);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        if q.try_push(t * 1000 + i).is_ok() {
                            produced.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(
            produced.load(std::sync::atomic::Ordering::SeqCst),
            consumed.load(std::sync::atomic::Ordering::SeqCst),
            "every accepted item must be consumed"
        );
    }
}
