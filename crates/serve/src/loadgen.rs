//! Closed-loop load generator for the serving core.
//!
//! `clients` threads each issue their share of `requests` back-to-back
//! against a freshly started [`Server`], then the server is drained and the
//! outcome distribution, client-side latency percentiles, and the drain
//! report are folded into one [`LoadGenReport`]. This is both the
//! `orpheus-cli serve --load-gen` backend and the CI smoke probe: the
//! report's `render()` output includes a machine-greppable `drain: clean`
//! line.

use std::sync::Arc;
use std::time::{Duration, Instant};

use orpheus::Network;
use orpheus_observe::Histogram;
use orpheus_tensor::Tensor;

use crate::server::{DrainReport, ServeError, Server, ServerConfig, StatsSnapshot};

/// Load-generation knobs.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Total requests across all clients.
    pub requests: usize,
    /// Concurrent closed-loop client threads.
    pub clients: usize,
    /// Per-request deadline budget (`None` = no deadline).
    pub deadline: Option<Duration>,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            requests: 200,
            clients: 4,
            deadline: None,
        }
    }
}

/// Per-client tallies, merged after the run.
#[derive(Default)]
struct ClientTally {
    completed_primary: u64,
    completed_reference: u64,
    shed_overload: u64,
    shed_deadline: u64,
    shed_shutdown: u64,
    faulted: u64,
    latency: Histogram,
}

/// Everything one load-generation run produced.
#[derive(Debug)]
pub struct LoadGenReport {
    /// Requests issued.
    pub total: u64,
    /// Completions on the primary path (client-observed).
    pub completed_primary: u64,
    /// Completions on the reference path (client-observed).
    pub completed_reference: u64,
    /// Requests shed at intake (queue full).
    pub shed_overload: u64,
    /// Requests shed on deadline expiry.
    pub shed_deadline: u64,
    /// Requests shed by shutdown.
    pub shed_shutdown: u64,
    /// Requests that faulted on both paths.
    pub faulted: u64,
    /// Client-side end-to-end latency (microseconds) of completions.
    pub latency: Histogram,
    /// Wall time of the request phase (excludes drain).
    pub wall: Duration,
    /// Completed requests per second of wall time.
    pub throughput_rps: f64,
    /// The server's own counters at drain time.
    pub stats: StatsSnapshot,
    /// How the graceful drain went.
    pub drain: DrainReport,
}

impl LoadGenReport {
    /// Every issued request got a terminal outcome (completed, shed, or
    /// faulted) — the "no request left behind" invariant.
    pub fn all_resolved(&self) -> bool {
        self.completed_primary
            + self.completed_reference
            + self.shed_overload
            + self.shed_deadline
            + self.shed_shutdown
            + self.faulted
            == self.total
    }

    /// Human-readable summary; `drain: clean`/`drain: DIRTY` and
    /// `worker panics: N` lines are stable for scripts to grep.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let completed = self.completed_primary + self.completed_reference;
        out.push_str(&format!(
            "load-gen: {} requests, {:.1} req/s over {:?}\n",
            self.total, self.throughput_rps, self.wall
        ));
        out.push_str(&format!(
            "  completed: {completed} (primary {}, reference {})\n",
            self.completed_primary, self.completed_reference
        ));
        out.push_str(&format!(
            "  shed: overload {}, deadline {}, shutdown {}; faulted: {}\n",
            self.shed_overload, self.shed_deadline, self.shed_shutdown, self.faulted
        ));
        if self.latency.count() > 0 {
            out.push_str(&format!(
                "  latency us: p50 {} p90 {} p99 {} max {}\n",
                self.latency.percentile(0.50),
                self.latency.percentile(0.90),
                self.latency.percentile(0.99),
                self.latency.max()
            ));
        }
        if self.stats.batches > 0 {
            out.push_str(&format!(
                "  batched: {} coalesced run(s) served {} request(s) (mean occupancy {:.1})\n",
                self.stats.batches,
                self.stats.batched_requests,
                self.stats.batched_requests as f64 / self.stats.batches as f64
            ));
        }
        out.push_str(&format!(
            "  faults isolated: {} panics, {} respawns; breaker: {} trips, {} closes\n",
            self.stats.panics_isolated,
            self.stats.respawns,
            self.stats.breaker_trips,
            self.stats.breaker_closes
        ));
        out.push_str(&format!(
            "  drain: {} ({} force-shed in {:?})\n",
            if self.drain.clean { "clean" } else { "DIRTY" },
            self.drain.shed,
            self.drain.waited
        ));
        out.push_str(&format!("  worker panics: {}\n", self.drain.worker_panics));
        if !self.all_resolved() {
            out.push_str("  WARNING: outcome counts do not sum to total\n");
        }
        out
    }
}

/// Starts a server over `network`, drives `cfg.requests` through it from
/// `cfg.clients` closed-loop threads, drains, and reports.
pub fn run_load_gen(
    network: Arc<Network>,
    server_cfg: ServerConfig,
    cfg: LoadGenConfig,
) -> LoadGenReport {
    let dims: Vec<usize> = network.input_dims().to_vec();
    let server = Arc::new(Server::start(network, server_cfg));
    let clients = cfg.clients.max(1);
    let total = cfg.requests.max(1);
    let start = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let server = Arc::clone(&server);
                let dims = dims.clone();
                // Spread the remainder so counts sum exactly to `total`.
                let share = total / clients + usize::from(c < total % clients);
                scope.spawn(move || {
                    let mut tally = ClientTally::default();
                    for k in 0..share {
                        let seed = c * 7919 + k;
                        let input =
                            Tensor::from_fn(&dims, move |i| ((i + seed) % 17) as f32 * 0.05);
                        let outcome = match server.submit_with_deadline(input, cfg.deadline) {
                            Ok(ticket) => ticket.wait(),
                            Err(e) => Err(e),
                        };
                        match outcome {
                            Ok(reply) => {
                                tally.latency.record(reply.total.as_micros() as u64);
                                match reply.route {
                                    crate::breaker::Route::Primary => {
                                        tally.completed_primary += 1;
                                    }
                                    crate::breaker::Route::Reference => {
                                        tally.completed_reference += 1;
                                    }
                                }
                            }
                            Err(ServeError::Overloaded) => tally.shed_overload += 1,
                            Err(ServeError::DeadlineExpired) => tally.shed_deadline += 1,
                            Err(ServeError::ShuttingDown) => tally.shed_shutdown += 1,
                            Err(ServeError::Faulted(_)) => tally.faulted += 1,
                        }
                    }
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let wall = start.elapsed();
    let drain = server.shutdown();
    let stats = server.stats();

    let mut merged = ClientTally::default();
    for tally in &tallies {
        merged.completed_primary += tally.completed_primary;
        merged.completed_reference += tally.completed_reference;
        merged.shed_overload += tally.shed_overload;
        merged.shed_deadline += tally.shed_deadline;
        merged.shed_shutdown += tally.shed_shutdown;
        merged.faulted += tally.faulted;
        merged.latency.merge(&tally.latency);
    }
    let completed = merged.completed_primary + merged.completed_reference;
    let throughput_rps = if wall.as_secs_f64() > 0.0 {
        completed as f64 / wall.as_secs_f64()
    } else {
        0.0
    };
    LoadGenReport {
        total: total as u64,
        completed_primary: merged.completed_primary,
        completed_reference: merged.completed_reference,
        shed_overload: merged.shed_overload,
        shed_deadline: merged.shed_deadline,
        shed_shutdown: merged.shed_shutdown,
        faulted: merged.faulted,
        latency: merged.latency,
        wall,
        throughput_rps,
        stats,
        drain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orpheus::Engine;
    use orpheus_models::{build_model, ModelKind};

    #[test]
    fn load_gen_resolves_every_request_and_drains_clean() {
        let network = Arc::new(
            Engine::builder()
                .build()
                .unwrap()
                .load(build_model(ModelKind::TinyCnn))
                .unwrap(),
        );
        let report = run_load_gen(
            network,
            ServerConfig {
                workers: 2,
                queue_depth: 16,
                ..ServerConfig::default()
            },
            LoadGenConfig {
                requests: 64,
                clients: 3,
                deadline: None,
            },
        );
        assert!(report.all_resolved(), "{}", report.render());
        assert!(report.drain.clean, "{}", report.render());
        assert_eq!(report.drain.worker_panics, 0);
        assert!(report.completed_primary > 0);
        let text = report.render();
        assert!(text.contains("drain: clean"), "{text}");
        assert!(text.contains("worker panics: 0"), "{text}");
    }
}
