//! Flight-recorder writes from inside `orpheus-threads` parallel regions.
//!
//! Kernel code degrading inside a pool worker must be able to stamp the
//! flight recorder without convoying the region: `flight_record` never
//! blocks, so concurrent chunk bodies recording events may only ever trade a
//! write for a counted drop, never a stall or a lost-and-uncounted event.

use orpheus_observe as observe;
use orpheus_threads::ThreadPool;

#[test]
fn pool_workers_record_flight_events_concurrently() {
    let pool = ThreadPool::new(4).unwrap();
    let len = 200usize; // well under the ring capacity
    assert!(len < observe::flight_capacity());

    let dropped_before = observe::flight_dropped();
    // min_chunk 1 forces the region to actually split across workers.
    pool.parallel_for(len, 1, |start, end| {
        for i in start..end {
            observe::flight_record("pool-test", format!("i{i}"), "");
        }
    });

    let events: Vec<_> = observe::flight_snapshot()
        .into_iter()
        .filter(|e| e.category == "pool-test")
        .collect();
    let dropped = observe::flight_dropped() - dropped_before;

    // Every iteration either landed in the ring or was counted as dropped —
    // nothing vanishes silently.
    assert_eq!(events.len() + dropped as usize, len);
    // Slot claims are unique atomic tickets, so with spare capacity and no
    // concurrent reader nothing should actually have been dropped.
    assert_eq!(dropped, 0, "concurrent writers collided");
    for i in 0..len {
        let label = format!("i{i}");
        assert_eq!(
            events.iter().filter(|e| e.label == label).count(),
            1,
            "iteration {i} did not record exactly once"
        );
    }
    // More than one thread ordinal shows up: the writes really came from
    // distinct worker threads, not a serialized fallback.
    let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    assert!(tids.len() > 1, "all events came from one thread");
}
