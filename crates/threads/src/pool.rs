//! The scoped chunking thread pool.

use std::error::Error;
use std::fmt;

/// Error raised when constructing a [`ThreadPool`] with an invalid
/// configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// A pool must have at least one thread.
    ZeroThreads,
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::ZeroThreads => write!(f, "thread pool requires at least one thread"),
        }
    }
}

impl Error for PoolError {}

/// A data-parallel chunking executor, Orpheus's OpenMP substitute.
///
/// `ThreadPool` splits index ranges into contiguous chunks and executes them
/// with `std::thread::scope`, so the worker closures may borrow stack data.
/// With one thread (the paper's Figure 2 configuration) every primitive
/// degenerates to a plain sequential loop with no synchronization cost.
///
/// The pool is cheap to clone and `Send + Sync`; operators take it by
/// reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool that runs parallel regions on `threads` threads.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::ZeroThreads`] if `threads == 0`.
    pub fn new(threads: usize) -> Result<Self, PoolError> {
        if threads == 0 {
            return Err(PoolError::ZeroThreads);
        }
        Ok(ThreadPool { threads })
    }

    /// A single-threaded pool — the configuration used for the paper's
    /// headline single-thread measurements.
    pub fn single() -> Self {
        ThreadPool { threads: 1 }
    }

    /// A pool sized to the machine's available parallelism.
    ///
    /// This mirrors TF-Lite's behaviour of always using the maximum number of
    /// threads.
    pub fn max_hardware() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ThreadPool { threads }
    }

    /// Number of threads parallel regions will use.
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Splits `[0, len)` into at most `num_threads` contiguous chunks of at
    /// least `min_chunk` iterations and runs `body(start, end)` for each.
    ///
    /// Chunks run concurrently when the pool has more than one thread; the
    /// call returns after every chunk completes (an implicit barrier, like the
    /// end of an OpenMP parallel region).
    ///
    /// # Panics
    ///
    /// Propagates a panic from any chunk body after all chunks finish or
    /// unwind.
    pub fn parallel_for<F>(&self, len: usize, min_chunk: usize, body: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        if len == 0 {
            return;
        }
        // Allocation-free fast path: a range that won't split runs inline
        // without ever planning chunk boundaries.
        if self.num_chunks(len, min_chunk) <= 1 {
            body(0, len);
            return;
        }
        let chunks = self.plan_chunks(len, min_chunk);
        let parent = orpheus_observe::current_span_id();
        std::thread::scope(|scope| {
            // Run all but the first chunk on spawned workers; the caller's
            // thread takes chunk 0 so a two-thread pool uses two threads.
            for &(start, end) in &chunks[1..] {
                let body = &body;
                scope.spawn(move || {
                    let _chunk = chunk_span(parent, start, end);
                    body(start, end)
                });
            }
            let (start, end) = chunks[0];
            let _chunk = chunk_span(parent, start, end);
            body(start, end);
        });
    }

    /// Splits a mutable slice into contiguous chunks and hands each chunk
    /// (with its starting index) to `body`, in parallel.
    ///
    /// This is the safe idiom for operators that write disjoint regions of an
    /// output buffer.
    pub fn parallel_for_mut<T, F>(&self, data: &mut [T], min_chunk: usize, body: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let len = data.len();
        if len == 0 {
            return;
        }
        if self.num_chunks(len, min_chunk) <= 1 {
            body(0, data);
            return;
        }
        let chunks = self.plan_chunks(len, min_chunk);
        // Carve the slice into disjoint &mut chunks up front.
        let mut pieces: Vec<(usize, &mut [T])> = Vec::with_capacity(chunks.len());
        let mut rest = data;
        let mut consumed = 0;
        for &(start, end) in &chunks {
            let (head, tail) = rest.split_at_mut(end - start);
            debug_assert_eq!(consumed, start);
            pieces.push((start, head));
            rest = tail;
            consumed = end;
        }
        let parent = orpheus_observe::current_span_id();
        std::thread::scope(|scope| {
            let mut iter = pieces.into_iter();
            let first = iter.next().expect("at least one chunk");
            for (start, chunk) in iter {
                let body = &body;
                let len = chunk.len();
                scope.spawn(move || {
                    let _chunk = chunk_span(parent, start, start + len);
                    body(start, chunk)
                });
            }
            let _chunk = chunk_span(parent, first.0, first.0 + first.1.len());
            body(first.0, first.1);
        });
    }

    /// Splits a mutable slice that represents `len / row_len` rows of
    /// `row_len` elements into bands of whole rows, and hands each band (with
    /// its starting row index) to `body`, in parallel.
    ///
    /// This is the decomposition GEMM and convolution use: each worker owns a
    /// disjoint band of output rows.
    ///
    /// # Panics
    ///
    /// Panics if `row_len == 0` or `data.len()` is not a multiple of `row_len`.
    pub fn parallel_for_rows<T, F>(&self, data: &mut [T], row_len: usize, min_rows: usize, body: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(row_len > 0, "row_len must be positive");
        assert_eq!(
            data.len() % row_len,
            0,
            "data length {} not a multiple of row length {row_len}",
            data.len()
        );
        let rows = data.len() / row_len;
        if rows == 0 {
            return;
        }
        if self.num_chunks(rows, min_rows.max(1)) <= 1 {
            body(0, data);
            return;
        }
        let chunks = self.plan_chunks(rows, min_rows.max(1));
        let mut pieces: Vec<(usize, &mut [T])> = Vec::with_capacity(chunks.len());
        let mut rest = data;
        for &(start, end) in &chunks {
            let (head, tail) = rest.split_at_mut((end - start) * row_len);
            pieces.push((start, head));
            rest = tail;
        }
        let parent = orpheus_observe::current_span_id();
        std::thread::scope(|scope| {
            let mut iter = pieces.into_iter();
            let first = iter.next().expect("at least one chunk");
            for (start, chunk) in iter {
                let body = &body;
                let rows = chunk.len() / row_len;
                scope.spawn(move || {
                    let _chunk = chunk_span(parent, start, start + rows);
                    body(start, chunk)
                });
            }
            let first_rows = first.1.len() / row_len;
            let _chunk = chunk_span(parent, first.0, first.0 + first_rows);
            body(first.0, first.1);
        });
    }

    /// Like [`ThreadPool::parallel_for_rows`], but every band starts on a
    /// multiple of `align` rows (the final band absorbs the remainder).
    ///
    /// Kernels that index globally pre-packed tiles — the prepacked GEMM
    /// path — need band boundaries that coincide with register-tile rows.
    ///
    /// # Panics
    ///
    /// Panics if `align == 0`, `row_len == 0`, or `data.len()` is not a
    /// multiple of `row_len`.
    pub fn parallel_for_rows_aligned<T, F>(
        &self,
        data: &mut [T],
        row_len: usize,
        min_rows: usize,
        align: usize,
        body: F,
    ) where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(align > 0, "alignment must be positive");
        assert!(row_len > 0, "row_len must be positive");
        assert_eq!(
            data.len() % row_len,
            0,
            "data length {} not a multiple of row length {row_len}",
            data.len()
        );
        let rows = data.len() / row_len;
        if rows == 0 {
            return;
        }
        let n = self.num_chunks(rows, min_rows.max(1));
        // Equal-split band size rounded up to the alignment; the last band
        // takes whatever remains (at most `align - 1` rows short of a
        // boundary).
        let band = rows.div_ceil(n).div_ceil(align) * align;
        if band >= rows {
            body(0, data);
            return;
        }
        let mut pieces: Vec<(usize, &mut [T])> = Vec::with_capacity(rows.div_ceil(band));
        let mut rest = data;
        let mut start = 0;
        while start < rows {
            let size = band.min(rows - start);
            let (head, tail) = rest.split_at_mut(size * row_len);
            pieces.push((start, head));
            rest = tail;
            start += size;
        }
        let parent = orpheus_observe::current_span_id();
        std::thread::scope(|scope| {
            let mut iter = pieces.into_iter();
            let first = iter.next().expect("at least one chunk");
            for (start, chunk) in iter {
                let body = &body;
                let rows = chunk.len() / row_len;
                scope.spawn(move || {
                    let _chunk = chunk_span(parent, start, start + rows);
                    body(start, chunk)
                });
            }
            let first_rows = first.1.len() / row_len;
            let _chunk = chunk_span(parent, first.0, first.0 + first_rows);
            body(first.0, first.1);
        });
    }

    /// How many chunks a range of `len` iterations would split into, without
    /// materializing the boundaries.
    fn num_chunks(&self, len: usize, min_chunk: usize) -> usize {
        let min_chunk = min_chunk.max(1);
        self.threads.min(len.div_ceil(min_chunk)).max(1)
    }

    /// Computes the chunk boundaries for a range of `len` iterations.
    fn plan_chunks(&self, len: usize, min_chunk: usize) -> Vec<(usize, usize)> {
        let n = self.num_chunks(len, min_chunk);
        let base = len / n;
        let extra = len % n;
        let mut chunks = Vec::with_capacity(n);
        let mut start = 0;
        for i in 0..n {
            let size = base + usize::from(i < extra);
            chunks.push((start, start + size));
            start += size;
        }
        debug_assert_eq!(start, len);
        chunks
    }
}

/// Opens a per-chunk span parented to the span that was current on the
/// dispatching thread. Inert (and allocation-free) while tracing is off.
fn chunk_span(parent: Option<u64>, start: usize, end: usize) -> orpheus_observe::SpanGuard {
    let mut span = orpheus_observe::span_with_parent("chunk", "threads", parent);
    span.attr("start", start);
    span.attr("end", end);
    span
}

impl Default for ThreadPool {
    /// Equivalent to [`ThreadPool::single`].
    fn default() -> Self {
        ThreadPool::single()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn zero_threads_rejected() {
        assert_eq!(ThreadPool::new(0).unwrap_err(), PoolError::ZeroThreads);
    }

    #[test]
    fn single_pool_runs_sequentially() {
        let pool = ThreadPool::single();
        let counter = AtomicUsize::new(0);
        pool.parallel_for(10, 1, |s, e| {
            counter.fetch_add(e - s, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn chunks_cover_range_exactly() {
        for threads in 1..=8 {
            let pool = ThreadPool::new(threads).unwrap();
            for len in [0usize, 1, 7, 64, 1000] {
                let chunks = pool.plan_chunks(len.max(1), 1);
                let total: usize = chunks.iter().map(|(s, e)| e - s).sum();
                assert_eq!(total, len.max(1));
                for w in chunks.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "chunks must be contiguous");
                }
            }
        }
    }

    #[test]
    fn min_chunk_limits_splitting() {
        let pool = ThreadPool::new(8).unwrap();
        let chunks = pool.plan_chunks(10, 10);
        assert_eq!(chunks.len(), 1);
        let chunks = pool.plan_chunks(10, 5);
        assert_eq!(chunks.len(), 2);
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        let pool = ThreadPool::new(4).unwrap();
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(97, 1, |s, e| {
            for h in &hits[s..e] {
                h.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn parallel_for_mut_writes_disjoint_chunks() {
        let pool = ThreadPool::new(3).unwrap();
        let mut data = vec![0usize; 50];
        pool.parallel_for_mut(&mut data, 1, |start, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = start + i;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i);
        }
    }

    #[test]
    fn parallel_for_rows_bands_are_row_aligned() {
        let pool = ThreadPool::new(3).unwrap();
        let row_len = 7;
        let rows = 10;
        let mut data = vec![0usize; rows * row_len];
        pool.parallel_for_rows(&mut data, row_len, 1, |row0, band| {
            assert_eq!(band.len() % row_len, 0, "band must be whole rows");
            for (i, slot) in band.iter_mut().enumerate() {
                *slot = row0 * row_len + i;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i);
        }
    }

    #[test]
    fn parallel_for_rows_aligned_bands_start_on_alignment() {
        for threads in [1usize, 2, 3, 8] {
            let pool = ThreadPool::new(threads).unwrap();
            for rows in [1usize, 3, 4, 10, 67] {
                let row_len = 5;
                let align = 4;
                let mut data = vec![0usize; rows * row_len];
                pool.parallel_for_rows_aligned(&mut data, row_len, 1, align, |row0, band| {
                    assert_eq!(row0 % align, 0, "band must start on the alignment");
                    assert_eq!(band.len() % row_len, 0, "band must be whole rows");
                    for (i, slot) in band.iter_mut().enumerate() {
                        *slot = row0 * row_len + i;
                    }
                });
                for (i, &v) in data.iter().enumerate() {
                    assert_eq!(v, i, "threads={threads} rows={rows}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn parallel_for_rows_rejects_ragged_data() {
        let pool = ThreadPool::single();
        let mut data = vec![0u8; 10];
        pool.parallel_for_rows(&mut data, 3, 1, |_, _| {});
    }

    #[test]
    fn empty_range_is_noop() {
        let pool = ThreadPool::new(4).unwrap();
        pool.parallel_for(0, 1, |_, _| panic!("must not run"));
        let mut empty: Vec<u8> = Vec::new();
        pool.parallel_for_mut(&mut empty, 1, |_, _| panic!("must not run"));
    }

    #[test]
    fn closures_can_borrow_stack_data() {
        let pool = ThreadPool::new(2).unwrap();
        let input = vec![1.0f32; 64];
        let total = AtomicUsize::new(0);
        pool.parallel_for(input.len(), 8, |s, e| {
            let partial: f32 = input[s..e].iter().sum();
            total.fetch_add(partial as usize, Ordering::SeqCst);
        });
        assert_eq!(total.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn max_hardware_has_at_least_one_thread() {
        assert!(ThreadPool::max_hardware().num_threads() >= 1);
    }

    #[test]
    fn pool_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ThreadPool>();
    }
}
