//! Thread-local reusable scratch buffers for kernel workspaces.
//!
//! Kernels that need a temporary `f32` workspace (GEMM pack panels, im2col
//! column matrices, padded input images) historically allocated a fresh `Vec`
//! on every call. [`take_scratch`] hands out a buffer from a small per-thread
//! pool instead: the buffer reads as `vec![0.0; len]` — only the backing
//! allocation is recycled, never the contents — and returns to the pool when
//! the guard drops. After a warm-up call or two the pooled capacities have
//! grown to the largest request and steady-state inference stops touching the
//! heap for scratch entirely, which is what lets `Session::run` keep its
//! zero-allocation guarantee on a single thread.
//!
//! Workers spawned by [`ThreadPool`](crate::ThreadPool) parallel regions are
//! fresh scoped threads with their own (empty) pools, so multi-threaded runs
//! still allocate scratch once per region; the zero-allocation property holds
//! for single-threaded pools, the paper's headline configuration.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Buffers kept per thread. Scratch holders nest only a few levels deep (a
/// conv kernel holding a column buffer while GEMM takes two pack panels), so
/// a handful of pooled buffers covers the deepest chain.
const MAX_POOLED: usize = 8;

thread_local! {
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// A zeroed `f32` workspace of exactly the requested length.
///
/// Dereferences to `[f32]`. On drop the backing allocation returns to this
/// thread's scratch pool for reuse.
#[derive(Debug)]
pub struct ScratchGuard {
    buf: Vec<f32>,
}

/// Takes a zeroed scratch buffer of `len` elements from this thread's pool.
///
/// Allocation-free once the pooled buffer's capacity has grown to `len`.
pub fn take_scratch(len: usize) -> ScratchGuard {
    let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    buf.clear();
    buf.resize(len, 0.0);
    ScratchGuard { buf }
}

impl Deref for ScratchGuard {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl DerefMut for ScratchGuard {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Drop for ScratchGuard {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < MAX_POOLED {
                pool.push(buf);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_is_zeroed_even_after_reuse() {
        {
            let mut s = take_scratch(16);
            s[3] = 7.0;
        }
        let s = take_scratch(32);
        assert_eq!(s.len(), 32);
        assert!(s.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn scratch_reuses_the_backing_allocation() {
        let ptr = {
            let s = take_scratch(64);
            s.as_ptr()
        };
        let s = take_scratch(8);
        assert_eq!(s.as_ptr(), ptr, "pooled capacity should be recycled");
    }

    #[test]
    fn nested_guards_get_distinct_buffers() {
        let a = take_scratch(4);
        let b = take_scratch(4);
        assert_ne!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn zero_length_scratch_is_fine() {
        let s = take_scratch(0);
        assert!(s.is_empty());
    }
}
