//! Data-parallel execution for Orpheus operators.
//!
//! The original Orpheus leverages OpenMP `parallel for` inside its C++
//! operator implementations. This crate is the Rust substitute: a
//! [`ThreadPool`] with a [`ThreadPool::parallel_for`] primitive that splits an
//! index range into contiguous chunks and runs each chunk on a worker via
//! `std::thread::scope`, so closures may borrow stack data exactly like an
//! OpenMP parallel region.
//!
//! The pool is a *configuration* object: the number of threads is chosen at
//! construction and every operator receives the pool by reference, which is
//! how the experiment harness pins runs to one thread (the paper's Figure 2
//! is measured with a single thread).
//!
//! # Examples
//!
//! ```
//! use orpheus_threads::ThreadPool;
//!
//! let pool = ThreadPool::new(2).unwrap();
//! let mut out = vec![0usize; 100];
//! pool.parallel_for_mut(&mut out, 1, |start, chunk| {
//!     for (i, slot) in chunk.iter_mut().enumerate() {
//!         *slot = (start + i) * 2;
//!     }
//! });
//! assert_eq!(out[7], 14);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod pool;
mod scratch;

pub use pool::{PoolError, ThreadPool};
pub use scratch::{take_scratch, ScratchGuard};
