//! C ABI for Orpheus.
//!
//! The paper provides Python bindings so Orpheus can be "embedded in other
//! experimental workflows"; this crate is the reproduction's equivalent: a
//! `cdylib` exposing engine/network lifecycle and inference over a plain C
//! calling convention, loadable from Python (`ctypes`), C, or anything else
//! with an FFI.
//!
//! ## Conventions
//!
//! * Every fallible function returns an [`OrpheusStatus`] code; `0` is
//!   success.
//! * Object lifetimes are explicit: every `*_new`/`*_load` has a matching
//!   `*_free`. Passing null where an object is required returns
//!   [`ORPHEUS_STATUS_NULL_ARGUMENT`]; freeing null is a no-op.
//! * On failure, [`orpheus_last_error_message`] retrieves a thread-local
//!   human-readable description.
//!
//! ## Safety
//!
//! This is the only crate in the workspace that contains `unsafe` code
//! (every other crate carries `#![forbid(unsafe_code)]`), and all of it is
//! FFI pointer handling at the boundary. The contract, uniform across entry
//! points and repeated in each function's `# Safety` section:
//!
//! * Handle pointers (`*mut OrpheusEngine`, `*mut OrpheusNetwork`) must be
//!   null or values previously returned by this library that have not been
//!   freed. Double-free and use-after-free are undefined behaviour, exactly
//!   as in any C API.
//! * Buffer pointers must be null or valid for the byte/element length
//!   passed alongside them; lengths are trusted.
//! * C strings must be null or NUL-terminated.
//!
//! Null never trips UB — every entry point checks pointers before
//! dereferencing and returns [`ORPHEUS_STATUS_NULL_ARGUMENT`]. Beyond the
//! boundary checks, no `unsafe` appears in the call paths: handles wrap
//! ordinary safe Rust objects from `orpheus-core`.
//!
//! ## Python sketch
//!
//! ```python
//! lib = ctypes.CDLL("liborpheus_capi.so")
//! engine = ctypes.c_void_p()
//! lib.orpheus_engine_new(b"orpheus", 1, ctypes.byref(engine))
//! network = ctypes.c_void_p()
//! lib.orpheus_engine_load_onnx(engine, model_bytes, len(model_bytes),
//!                              ctypes.byref(network))
//! out = (ctypes.c_float * 1000)()
//! written = ctypes.c_size_t()
//! lib.orpheus_network_run(network, image, len(image), out, 1000,
//!                         ctypes.byref(written))
//! ```

use std::cell::RefCell;
use std::ffi::{c_char, CStr};

use orpheus::{Engine, Network, Personality, Session};
use orpheus_tensor::Tensor;

/// Status codes returned by every fallible entry point.
pub type OrpheusStatus = i32;

/// The call succeeded.
pub const ORPHEUS_STATUS_OK: OrpheusStatus = 0;
/// A required pointer argument was null.
pub const ORPHEUS_STATUS_NULL_ARGUMENT: OrpheusStatus = 1;
/// A string argument was not valid UTF-8 or named an unknown entity.
pub const ORPHEUS_STATUS_INVALID_ARGUMENT: OrpheusStatus = 2;
/// The engine rejected the configuration (e.g. tflite-sim thread policy).
pub const ORPHEUS_STATUS_CONFIG: OrpheusStatus = 3;
/// Model loading failed (bad ONNX bytes, unsupported ops...).
pub const ORPHEUS_STATUS_LOAD: OrpheusStatus = 4;
/// Inference failed (shape mismatch, undersized buffer...).
pub const ORPHEUS_STATUS_RUN: OrpheusStatus = 5;

thread_local! {
    static LAST_ERROR: RefCell<String> = const { RefCell::new(String::new()) };
}

fn set_error(msg: impl Into<String>) {
    LAST_ERROR.with(|slot| *slot.borrow_mut() = msg.into());
}

/// Opaque engine handle.
pub struct OrpheusEngine {
    engine: Engine,
}

/// Opaque network handle.
pub struct OrpheusNetwork {
    network: Network,
}

/// Opaque session handle: a reusable execution context whose activation
/// arena is preallocated once and recycled across runs.
pub struct OrpheusSession {
    session: Session,
}

/// Creates an engine.
///
/// `personality` is a NUL-terminated name (`"orpheus"`, `"tvm-sim"`,
/// `"pytorch-sim"`, `"darknet-sim"`, `"tflite-sim"`); `threads` must be
/// positive. On success writes a handle to `out`.
///
/// # Safety
///
/// `personality` must be a valid NUL-terminated C string and `out` a valid
/// pointer; the returned handle must be released with
/// [`orpheus_engine_free`].
#[no_mangle]
pub unsafe extern "C" fn orpheus_engine_new(
    personality: *const c_char,
    threads: usize,
    out: *mut *mut OrpheusEngine,
) -> OrpheusStatus {
    if personality.is_null() || out.is_null() {
        set_error("null argument to orpheus_engine_new");
        return ORPHEUS_STATUS_NULL_ARGUMENT;
    }
    let Ok(name) = CStr::from_ptr(personality).to_str() else {
        set_error("personality name is not valid UTF-8");
        return ORPHEUS_STATUS_INVALID_ARGUMENT;
    };
    let Some(personality) = Personality::from_name(name) else {
        set_error(format!("unknown personality {name:?}"));
        return ORPHEUS_STATUS_INVALID_ARGUMENT;
    };
    match Engine::builder()
        .personality(personality)
        .threads(threads)
        .build()
    {
        Ok(engine) => {
            *out = Box::into_raw(Box::new(OrpheusEngine { engine }));
            ORPHEUS_STATUS_OK
        }
        Err(e) => {
            set_error(e.to_string());
            ORPHEUS_STATUS_CONFIG
        }
    }
}

/// Releases an engine. Freeing null is a no-op.
///
/// # Safety
///
/// `engine` must be null or a handle from [`orpheus_engine_new`] not yet
/// freed.
#[no_mangle]
pub unsafe extern "C" fn orpheus_engine_free(engine: *mut OrpheusEngine) {
    if !engine.is_null() {
        drop(Box::from_raw(engine));
    }
}

/// Loads an ONNX model from a byte buffer; writes a network handle to `out`.
///
/// # Safety
///
/// `engine` must be a live engine handle, `bytes` must point to `len`
/// readable bytes, `out` must be a valid pointer; the returned handle must
/// be released with [`orpheus_network_free`].
#[no_mangle]
pub unsafe extern "C" fn orpheus_engine_load_onnx(
    engine: *const OrpheusEngine,
    bytes: *const u8,
    len: usize,
    out: *mut *mut OrpheusNetwork,
) -> OrpheusStatus {
    if engine.is_null() || bytes.is_null() || out.is_null() {
        set_error("null argument to orpheus_engine_load_onnx");
        return ORPHEUS_STATUS_NULL_ARGUMENT;
    }
    let slice = std::slice::from_raw_parts(bytes, len);
    match (*engine).engine.load_onnx(slice) {
        Ok(network) => {
            *out = Box::into_raw(Box::new(OrpheusNetwork { network }));
            ORPHEUS_STATUS_OK
        }
        Err(e) => {
            set_error(e.to_string());
            ORPHEUS_STATUS_LOAD
        }
    }
}

/// Releases a network. Freeing null is a no-op.
///
/// # Safety
///
/// `network` must be null or a handle from [`orpheus_engine_load_onnx`] not
/// yet freed.
#[no_mangle]
pub unsafe extern "C" fn orpheus_network_free(network: *mut OrpheusNetwork) {
    if !network.is_null() {
        drop(Box::from_raw(network));
    }
}

/// Number of executable layers in the network.
///
/// # Safety
///
/// `network` must be a live network handle.
#[no_mangle]
pub unsafe extern "C" fn orpheus_network_num_layers(network: *const OrpheusNetwork) -> usize {
    if network.is_null() {
        return 0;
    }
    (*network).network.num_layers()
}

/// Writes the expected input dims (`[n, c, h, w]`) to `dims_out[0..4]`.
///
/// # Safety
///
/// `network` must be a live network handle and `dims_out` must point to at
/// least 4 writable `usize`s.
#[no_mangle]
pub unsafe extern "C" fn orpheus_network_input_dims(
    network: *const OrpheusNetwork,
    dims_out: *mut usize,
) -> OrpheusStatus {
    if network.is_null() || dims_out.is_null() {
        set_error("null argument to orpheus_network_input_dims");
        return ORPHEUS_STATUS_NULL_ARGUMENT;
    }
    let dims = (*network).network.input_dims();
    if dims.len() != 4 {
        set_error(format!("model input is rank {}, expected 4", dims.len()));
        return ORPHEUS_STATUS_RUN;
    }
    for (i, &d) in dims.iter().enumerate() {
        *dims_out.add(i) = d;
    }
    ORPHEUS_STATUS_OK
}

/// Runs one inference.
///
/// `input` must hold exactly the product of the model's input dims floats
/// (NCHW). The output is copied into `output` (capacity `output_capacity`
/// floats) and its length written to `written_out`.
///
/// # Safety
///
/// `network` must be a live network handle; `input` must point to
/// `input_len` readable floats; `output` to `output_capacity` writable
/// floats; `written_out` must be valid.
#[no_mangle]
pub unsafe extern "C" fn orpheus_network_run(
    network: *const OrpheusNetwork,
    input: *const f32,
    input_len: usize,
    output: *mut f32,
    output_capacity: usize,
    written_out: *mut usize,
) -> OrpheusStatus {
    if network.is_null() || input.is_null() || output.is_null() || written_out.is_null() {
        set_error("null argument to orpheus_network_run");
        return ORPHEUS_STATUS_NULL_ARGUMENT;
    }
    let net = &(*network).network;
    let dims = net.input_dims().to_vec();
    let expected: usize = dims.iter().product();
    if input_len != expected {
        set_error(format!(
            "input has {input_len} floats, model expects {expected} ({dims:?})"
        ));
        return ORPHEUS_STATUS_RUN;
    }
    let in_slice = std::slice::from_raw_parts(input, input_len);
    let tensor = match Tensor::from_vec(in_slice.to_vec(), &dims) {
        Ok(t) => t,
        Err(e) => {
            set_error(e.to_string());
            return ORPHEUS_STATUS_RUN;
        }
    };
    match net.run(&tensor) {
        Ok(result) => {
            let data = result.as_slice();
            if data.len() > output_capacity {
                set_error(format!(
                    "output needs {} floats, buffer holds {output_capacity}",
                    data.len()
                ));
                return ORPHEUS_STATUS_RUN;
            }
            std::ptr::copy_nonoverlapping(data.as_ptr(), output, data.len());
            *written_out = data.len();
            ORPHEUS_STATUS_OK
        }
        Err(e) => {
            set_error(e.to_string());
            ORPHEUS_STATUS_RUN
        }
    }
}

/// Creates a reusable inference session for a network.
///
/// The session owns a preallocated activation arena sized by the network's
/// static memory plan; repeated [`orpheus_session_run`] calls recycle it
/// instead of allocating. The session shares the network's (immutable)
/// execution plan, so the network handle may be freed before the session.
///
/// # Safety
///
/// `network` must be a live network handle and `out` a valid pointer; the
/// returned handle must be released with [`orpheus_session_free`] and must
/// not be used from two threads at once (sessions are single-flight; create
/// one session per thread to run concurrently).
#[no_mangle]
pub unsafe extern "C" fn orpheus_session_new(
    network: *const OrpheusNetwork,
    out: *mut *mut OrpheusSession,
) -> OrpheusStatus {
    if network.is_null() || out.is_null() {
        set_error("null argument to orpheus_session_new");
        return ORPHEUS_STATUS_NULL_ARGUMENT;
    }
    let session = (*network).network.session();
    *out = Box::into_raw(Box::new(OrpheusSession { session }));
    ORPHEUS_STATUS_OK
}

/// Runs one inference through a session, recycling its activation arena.
///
/// Argument and buffer semantics are identical to [`orpheus_network_run`];
/// the difference is steady-state cost — after the first call the session
/// performs no activation allocations.
///
/// # Safety
///
/// `session` must be a live session handle (exclusive to this call —
/// sessions are not thread-safe); `input` must point to `input_len`
/// readable floats; `output` to `output_capacity` writable floats;
/// `written_out` must be valid.
#[no_mangle]
pub unsafe extern "C" fn orpheus_session_run(
    session: *mut OrpheusSession,
    input: *const f32,
    input_len: usize,
    output: *mut f32,
    output_capacity: usize,
    written_out: *mut usize,
) -> OrpheusStatus {
    if session.is_null() || input.is_null() || output.is_null() || written_out.is_null() {
        set_error("null argument to orpheus_session_run");
        return ORPHEUS_STATUS_NULL_ARGUMENT;
    }
    let in_slice = std::slice::from_raw_parts(input, input_len);
    let dims = (*session).session.input_dims().to_vec();
    let expected: usize = dims.iter().product();
    if input_len != expected {
        set_error(format!(
            "input has {input_len} floats, model expects {expected} ({dims:?})"
        ));
        return ORPHEUS_STATUS_RUN;
    }
    let tensor = match Tensor::from_vec(in_slice.to_vec(), &dims) {
        Ok(t) => t,
        Err(e) => {
            set_error(e.to_string());
            return ORPHEUS_STATUS_RUN;
        }
    };
    match (*session).session.run(&tensor) {
        Ok(result) => {
            let data = result.as_slice();
            if data.len() > output_capacity {
                set_error(format!(
                    "output needs {} floats, buffer holds {output_capacity}",
                    data.len()
                ));
                return ORPHEUS_STATUS_RUN;
            }
            std::ptr::copy_nonoverlapping(data.as_ptr(), output, data.len());
            *written_out = data.len();
            ORPHEUS_STATUS_OK
        }
        Err(e) => {
            set_error(e.to_string());
            ORPHEUS_STATUS_RUN
        }
    }
}

/// Releases a session. Freeing null is a no-op.
///
/// # Safety
///
/// `session` must be null or a handle from [`orpheus_session_new`] not yet
/// freed.
#[no_mangle]
pub unsafe extern "C" fn orpheus_session_free(session: *mut OrpheusSession) {
    if !session.is_null() {
        drop(Box::from_raw(session));
    }
}

/// Copies the thread-local last error message (NUL-terminated, truncated to
/// `capacity`) into `buf`; returns the untruncated length in bytes.
///
/// # Safety
///
/// `buf` must point to `capacity` writable bytes (or be null to query the
/// length).
#[no_mangle]
pub unsafe extern "C" fn orpheus_last_error_message(buf: *mut c_char, capacity: usize) -> usize {
    LAST_ERROR.with(|slot| {
        let msg = slot.borrow();
        let bytes = msg.as_bytes();
        if !buf.is_null() && capacity > 0 {
            let n = bytes.len().min(capacity - 1);
            std::ptr::copy_nonoverlapping(bytes.as_ptr() as *const c_char, buf, n);
            *buf.add(n) = 0;
        }
        bytes.len()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use orpheus_models::{build_model, ModelKind};
    use orpheus_onnx::export_model;

    fn last_error() -> String {
        let mut buf = vec![0i8; 256];
        unsafe { orpheus_last_error_message(buf.as_mut_ptr(), buf.len()) };
        let bytes: Vec<u8> = buf
            .iter()
            .take_while(|&&c| c != 0)
            .map(|&c| c as u8)
            .collect();
        String::from_utf8_lossy(&bytes).into_owned()
    }

    #[test]
    fn full_lifecycle_through_c_abi() {
        let bytes = export_model(&build_model(ModelKind::TinyCnn)).unwrap();
        unsafe {
            let mut engine: *mut OrpheusEngine = std::ptr::null_mut();
            assert_eq!(
                orpheus_engine_new(c"orpheus".as_ptr(), 1, &mut engine),
                ORPHEUS_STATUS_OK
            );
            let mut network: *mut OrpheusNetwork = std::ptr::null_mut();
            assert_eq!(
                orpheus_engine_load_onnx(engine, bytes.as_ptr(), bytes.len(), &mut network),
                ORPHEUS_STATUS_OK
            );
            assert!(orpheus_network_num_layers(network) > 0);
            let mut dims = [0usize; 4];
            assert_eq!(
                orpheus_network_input_dims(network, dims.as_mut_ptr()),
                ORPHEUS_STATUS_OK
            );
            assert_eq!(dims, [1, 3, 8, 8]);

            let input = vec![0.5f32; 3 * 8 * 8];
            let mut output = vec![0.0f32; 16];
            let mut written = 0usize;
            assert_eq!(
                orpheus_network_run(
                    network,
                    input.as_ptr(),
                    input.len(),
                    output.as_mut_ptr(),
                    output.len(),
                    &mut written
                ),
                ORPHEUS_STATUS_OK
            );
            assert_eq!(written, 4);
            let sum: f32 = output[..written].iter().sum();
            assert!((sum - 1.0).abs() < 1e-3, "softmax sums to {sum}");

            orpheus_network_free(network);
            orpheus_engine_free(engine);
        }
    }

    #[test]
    fn error_paths_set_messages() {
        unsafe {
            let mut engine: *mut OrpheusEngine = std::ptr::null_mut();
            assert_eq!(
                orpheus_engine_new(c"not-a-framework".as_ptr(), 1, &mut engine),
                ORPHEUS_STATUS_INVALID_ARGUMENT
            );
            assert!(last_error().contains("not-a-framework"));

            assert_eq!(
                orpheus_engine_new(c"orpheus".as_ptr(), 0, &mut engine),
                ORPHEUS_STATUS_CONFIG
            );

            assert_eq!(
                orpheus_engine_new(c"orpheus".as_ptr(), 1, &mut engine),
                ORPHEUS_STATUS_OK
            );
            let garbage = [0xffu8; 16];
            let mut network: *mut OrpheusNetwork = std::ptr::null_mut();
            assert_eq!(
                orpheus_engine_load_onnx(engine, garbage.as_ptr(), garbage.len(), &mut network),
                ORPHEUS_STATUS_LOAD
            );
            orpheus_engine_free(engine);
        }
    }

    #[test]
    fn run_validates_buffer_sizes() {
        let bytes = export_model(&build_model(ModelKind::TinyCnn)).unwrap();
        unsafe {
            let mut engine: *mut OrpheusEngine = std::ptr::null_mut();
            orpheus_engine_new(c"orpheus".as_ptr(), 1, &mut engine);
            let mut network: *mut OrpheusNetwork = std::ptr::null_mut();
            orpheus_engine_load_onnx(engine, bytes.as_ptr(), bytes.len(), &mut network);

            let input = [0.0f32; 10]; // wrong length
            let mut output = vec![0.0f32; 16];
            let mut written = 0usize;
            assert_eq!(
                orpheus_network_run(
                    network,
                    input.as_ptr(),
                    input.len(),
                    output.as_mut_ptr(),
                    output.len(),
                    &mut written
                ),
                ORPHEUS_STATUS_RUN
            );
            assert!(last_error().contains("expects"));

            // Output buffer too small.
            let input = vec![0.0f32; 192];
            let mut tiny = vec![0.0f32; 1];
            assert_eq!(
                orpheus_network_run(
                    network,
                    input.as_ptr(),
                    input.len(),
                    tiny.as_mut_ptr(),
                    tiny.len(),
                    &mut written
                ),
                ORPHEUS_STATUS_RUN
            );

            orpheus_network_free(network);
            orpheus_engine_free(engine);
        }
    }

    #[test]
    fn freeing_null_is_noop() {
        unsafe {
            orpheus_engine_free(std::ptr::null_mut());
            orpheus_network_free(std::ptr::null_mut());
            orpheus_session_free(std::ptr::null_mut());
        }
        assert_eq!(unsafe { orpheus_network_num_layers(std::ptr::null()) }, 0);
    }

    #[test]
    fn session_reuses_across_runs_and_outlives_network() {
        let bytes = export_model(&build_model(ModelKind::TinyCnn)).unwrap();
        unsafe {
            let mut engine: *mut OrpheusEngine = std::ptr::null_mut();
            orpheus_engine_new(c"orpheus".as_ptr(), 1, &mut engine);
            let mut network: *mut OrpheusNetwork = std::ptr::null_mut();
            orpheus_engine_load_onnx(engine, bytes.as_ptr(), bytes.len(), &mut network);

            let mut session: *mut OrpheusSession = std::ptr::null_mut();
            assert_eq!(
                orpheus_session_new(network, &mut session),
                ORPHEUS_STATUS_OK
            );

            // One-shot answer to compare the session against.
            let input = vec![0.25f32; 3 * 8 * 8];
            let mut expected = vec![0.0f32; 16];
            let mut written = 0usize;
            assert_eq!(
                orpheus_network_run(
                    network,
                    input.as_ptr(),
                    input.len(),
                    expected.as_mut_ptr(),
                    expected.len(),
                    &mut written
                ),
                ORPHEUS_STATUS_OK
            );

            // The session shares the plan, not the network handle.
            orpheus_network_free(network);

            let mut output = vec![0.0f32; 16];
            for _ in 0..3 {
                let mut got = 0usize;
                assert_eq!(
                    orpheus_session_run(
                        session,
                        input.as_ptr(),
                        input.len(),
                        output.as_mut_ptr(),
                        output.len(),
                        &mut got
                    ),
                    ORPHEUS_STATUS_OK
                );
                assert_eq!(got, written);
                assert_eq!(&output[..got], &expected[..written]);
            }

            // Bad input length errors without poisoning the session.
            let short = [0.0f32; 3];
            let mut got = 0usize;
            assert_eq!(
                orpheus_session_run(
                    session,
                    short.as_ptr(),
                    short.len(),
                    output.as_mut_ptr(),
                    output.len(),
                    &mut got
                ),
                ORPHEUS_STATUS_RUN
            );
            assert!(last_error().contains("expects"));
            assert_eq!(
                orpheus_session_run(
                    session,
                    input.as_ptr(),
                    input.len(),
                    output.as_mut_ptr(),
                    output.len(),
                    &mut got
                ),
                ORPHEUS_STATUS_OK
            );

            orpheus_session_free(session);
            orpheus_engine_free(engine);
        }
    }

    #[test]
    fn tflite_thread_policy_surfaces_through_abi() {
        unsafe {
            let mut engine: *mut OrpheusEngine = std::ptr::null_mut();
            let max = orpheus_threads_max();
            let status = orpheus_engine_new(c"tflite-sim".as_ptr(), max + 1, &mut engine);
            assert_eq!(status, ORPHEUS_STATUS_CONFIG);
            assert!(last_error().contains("maximum number of threads"));
        }
    }

    fn orpheus_threads_max() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}
