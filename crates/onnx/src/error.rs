//! ONNX parsing errors.

use std::error::Error;
use std::fmt;

use orpheus_graph::GraphError;

/// Error raised while reading or writing ONNX bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum OnnxError {
    /// The byte stream is not valid protobuf (truncated varint, bad tag...).
    Wire(String),
    /// The protobuf parsed but is not a usable ONNX model.
    Model(String),
    /// An operator or attribute this importer does not support.
    Unsupported(String),
    /// The translated graph failed validation.
    Graph(GraphError),
    /// The input exceeded a configured [`ImportLimits`](crate::ImportLimits)
    /// bound; checked before the offending allocation is made.
    LimitExceeded {
        /// Which limit tripped (e.g. `"model bytes"`, `"graph nodes"`).
        what: String,
        /// The configured bound.
        limit: u64,
        /// The observed value.
        actual: u64,
    },
}

impl fmt::Display for OnnxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnnxError::Wire(msg) => write!(f, "protobuf wire error: {msg}"),
            OnnxError::Model(msg) => write!(f, "invalid onnx model: {msg}"),
            OnnxError::Unsupported(msg) => write!(f, "unsupported onnx feature: {msg}"),
            OnnxError::Graph(e) => write!(f, "imported graph invalid: {e}"),
            OnnxError::LimitExceeded {
                what,
                limit,
                actual,
            } => write!(f, "import limit exceeded: {what} {actual} > limit {limit}"),
        }
    }
}

impl Error for OnnxError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OnnxError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for OnnxError {
    fn from(e: GraphError) -> Self {
        OnnxError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(OnnxError::Wire("truncated".into())
            .to_string()
            .contains("truncated"));
        assert!(OnnxError::Unsupported("LSTM".into())
            .to_string()
            .contains("LSTM"));
    }

    #[test]
    fn graph_error_converts() {
        let e: OnnxError = GraphError::Cycle.into();
        assert!(matches!(e, OnnxError::Graph(_)));
        assert!(Error::source(&e).is_some());
    }
}
