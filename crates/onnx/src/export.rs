//! Serializing an Orpheus graph to ONNX bytes.
//!
//! The model zoo exports every model through this path so that execution
//! always exercises the real import pipeline, exactly as a model trained in
//! PyTorch or TensorFlow would arrive.

use orpheus_graph::{AttrValue, Graph, OpKind};

use crate::error::OnnxError;
use crate::proto::{
    AttributeProto, GraphProto, ModelProto, NodeProto, TensorProto, ValueInfoProto,
    DATA_TYPE_FLOAT, DATA_TYPE_INT64,
};

/// Serializes a graph as an ONNX `ModelProto` (opset 11).
///
/// `Reshape` nodes carrying a static `shape` attribute are exported in
/// spec-conformant form: the shape becomes an int64 initializer wired as the
/// node's second input.
///
/// # Errors
///
/// Returns [`OnnxError::Graph`] if the graph fails validation first.
pub fn export_model(graph: &Graph) -> Result<Vec<u8>, OnnxError> {
    graph.validate()?;
    let mut gp = GraphProto {
        name: graph.name.clone(),
        ..GraphProto::default()
    };

    for info in graph.inputs() {
        gp.inputs.push(ValueInfoProto {
            name: info.name.clone(),
            dims: info.dims.iter().map(|&d| d as i64).collect(),
        });
    }
    for output in graph.outputs() {
        gp.outputs.push(ValueInfoProto {
            name: output.clone(),
            dims: vec![],
        });
    }
    for (name, tensor) in graph.initializers() {
        gp.initializers.push(TensorProto {
            name: name.clone(),
            dims: tensor.dims().iter().map(|&d| d as i64).collect(),
            data_type: DATA_TYPE_FLOAT,
            float_data: tensor.as_slice().to_vec(),
            int64_data: vec![],
        });
    }

    for node in graph.nodes() {
        let mut np = NodeProto {
            name: node.name.clone(),
            op_type: node.op.onnx_name().to_string(),
            inputs: node.inputs.clone(),
            outputs: node.outputs.clone(),
            attributes: vec![],
        };
        for (key, value) in node.attrs.iter() {
            // Reshape's static shape travels as an initializer input, per spec.
            if node.op == OpKind::Reshape && key == "shape" {
                if let AttrValue::Ints(spec) = value {
                    let shape_name = format!("{}__shape", node.name);
                    gp.initializers.push(TensorProto {
                        name: shape_name.clone(),
                        dims: vec![spec.len() as i64],
                        data_type: DATA_TYPE_INT64,
                        float_data: vec![],
                        int64_data: spec.clone(),
                    });
                    np.inputs.push(shape_name);
                    continue;
                }
            }
            np.attributes.push(attr_to_proto(key, value));
        }
        gp.nodes.push(np);
    }

    Ok(ModelProto {
        ir_version: 7,
        producer_name: "orpheus-repro".into(),
        opset_version: 11,
        graph: Some(gp),
    }
    .serialize())
}

fn attr_to_proto(name: &str, value: &AttrValue) -> AttributeProto {
    let mut attr = AttributeProto {
        name: name.to_string(),
        ..AttributeProto::default()
    };
    match value {
        AttrValue::Int(i) => attr.i = Some(*i),
        AttrValue::Float(f) => attr.f = Some(*f),
        AttrValue::Str(s) => attr.s = Some(s.clone()),
        AttrValue::Ints(is) => attr.ints = is.clone(),
        AttrValue::Floats(fs) => attr.floats = fs.clone(),
    }
    attr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::import::import_model;
    use orpheus_graph::{Attributes, Node, ValueInfo};
    use orpheus_tensor::Tensor;

    #[test]
    fn export_import_round_trip_preserves_structure() {
        let mut g = Graph::new("rt");
        g.add_input(ValueInfo::new("x", &[1, 2, 4, 4]));
        g.add_initializer("w", Tensor::from_fn(&[3, 2, 3, 3], |i| i as f32 * 0.1));
        g.add_node(
            Node::new("conv", OpKind::Conv, &["x", "w"], &["c"]).with_attrs(
                Attributes::new()
                    .with("strides", AttrValue::Ints(vec![1, 1]))
                    .with("pads", AttrValue::Ints(vec![1, 1, 1, 1]))
                    .with("kernel_shape", AttrValue::Ints(vec![3, 3])),
            ),
        );
        g.add_node(Node::new("act", OpKind::Relu, &["c"], &["y"]));
        g.add_output("y");

        let bytes = export_model(&g).unwrap();
        let back = import_model(&bytes).unwrap();
        assert_eq!(back.name, "rt");
        assert_eq!(back.nodes().len(), 2);
        assert_eq!(back.nodes()[0].op, OpKind::Conv);
        assert_eq!(back.nodes()[0].attrs.ints_or("pads", &[]), vec![1, 1, 1, 1]);
        assert_eq!(back.inputs()[0].dims, vec![1, 2, 4, 4]);
        assert_eq!(
            back.initializer("w").unwrap().as_slice(),
            g.initializer("w").unwrap().as_slice()
        );
    }

    #[test]
    fn reshape_exports_as_initializer_input() {
        let mut g = Graph::new("rs");
        g.add_input(ValueInfo::new("x", &[1, 6]));
        g.add_node(
            Node::new("rs", OpKind::Reshape, &["x"], &["y"])
                .with_attrs(Attributes::new().with("shape", AttrValue::Ints(vec![2, 3]))),
        );
        g.add_output("y");
        let bytes = export_model(&g).unwrap();
        // Round-trip restores the attribute form.
        let back = import_model(&bytes).unwrap();
        assert_eq!(
            back.nodes()[0].attrs.get("shape"),
            Some(&AttrValue::Ints(vec![2, 3]))
        );
        assert_eq!(back.nodes()[0].inputs.len(), 1);
    }

    #[test]
    fn invalid_graph_rejected() {
        let mut g = Graph::new("bad");
        g.add_output("ghost");
        assert!(export_model(&g).is_err());
    }
}
