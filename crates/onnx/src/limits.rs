//! Resource limits enforced while parsing untrusted model bytes.
//!
//! A serialized ONNX model is attacker-controlled input: length-prefixed
//! fields, repeated messages, and packed arrays all translate directly into
//! allocations. [`ImportLimits`] bounds every such allocation *before* it
//! happens, so a hostile model is rejected with a typed
//! [`OnnxError::LimitExceeded`](crate::OnnxError::LimitExceeded) instead of
//! exhausting memory or panicking.
//!
//! The defaults are sized for the paper's model zoo (the largest export,
//! ResNet-50, is ~100 MiB with no tensor above ~3 M elements) with an order
//! of magnitude of headroom; callers with stricter budgets can tighten them
//! per import via [`import_model_with_limits`](crate::import_model_with_limits).

/// Bounds applied to untrusted model bytes during parsing and import.
///
/// Every limit is checked before the corresponding allocation is made.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImportLimits {
    /// Maximum serialized model size in bytes (default 1 GiB).
    pub max_model_bytes: usize,
    /// Maximum number of graph nodes, and also of declared graph
    /// inputs/outputs (default 65 536).
    pub max_nodes: usize,
    /// Maximum number of initializer tensors (default 65 536).
    pub max_initializers: usize,
    /// Maximum element count for any single tensor payload or packed array
    /// (default 2²⁸ ≈ 268 M elements, 1 GiB of f32).
    pub max_tensor_elements: usize,
    /// Maximum byte length of any string field — names, op types, string
    /// attributes (default 64 KiB).
    pub max_string_bytes: usize,
    /// Maximum protobuf message nesting depth (default 16; a well-formed
    /// ONNX model needs 6).
    pub max_nesting_depth: usize,
}

impl Default for ImportLimits {
    fn default() -> Self {
        ImportLimits {
            max_model_bytes: 1 << 30,
            max_nodes: 1 << 16,
            max_initializers: 1 << 16,
            max_tensor_elements: 1 << 28,
            max_string_bytes: 1 << 16,
            max_nesting_depth: 16,
        }
    }
}

impl ImportLimits {
    /// Limits that never trigger; parsing behaves as if unguarded.
    pub fn unlimited() -> Self {
        ImportLimits {
            max_model_bytes: usize::MAX,
            max_nodes: usize::MAX,
            max_initializers: usize::MAX,
            max_tensor_elements: usize::MAX,
            max_string_bytes: usize::MAX,
            max_nesting_depth: usize::MAX,
        }
    }

    /// Returns a copy with a different model-byte budget.
    #[must_use]
    pub fn with_max_model_bytes(mut self, n: usize) -> Self {
        self.max_model_bytes = n;
        self
    }

    /// Returns a copy with a different node-count budget.
    #[must_use]
    pub fn with_max_nodes(mut self, n: usize) -> Self {
        self.max_nodes = n;
        self
    }

    /// Returns a copy with a different tensor-element budget.
    #[must_use]
    pub fn with_max_tensor_elements(mut self, n: usize) -> Self {
        self.max_tensor_elements = n;
        self
    }

    /// Returns a copy with a different string-length budget.
    #[must_use]
    pub fn with_max_string_bytes(mut self, n: usize) -> Self {
        self.max_string_bytes = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_fit_the_model_zoo() {
        let l = ImportLimits::default();
        // ResNet-50 export: ~100 MiB, ~180 nodes, largest tensor ~2.4 M elems.
        assert!(l.max_model_bytes >= 512 << 20);
        assert!(l.max_nodes >= 1024);
        assert!(l.max_tensor_elements >= 1 << 24);
        assert!(l.max_nesting_depth >= 6);
    }

    #[test]
    fn builders_override_single_fields() {
        let l = ImportLimits::default()
            .with_max_model_bytes(10)
            .with_max_nodes(2)
            .with_max_tensor_elements(3)
            .with_max_string_bytes(4);
        assert_eq!(l.max_model_bytes, 10);
        assert_eq!(l.max_nodes, 2);
        assert_eq!(l.max_tensor_elements, 3);
        assert_eq!(l.max_string_bytes, 4);
        assert_eq!(
            l.max_nesting_depth,
            ImportLimits::default().max_nesting_depth
        );
    }

    #[test]
    fn unlimited_never_triggers() {
        let l = ImportLimits::unlimited();
        assert_eq!(l.max_model_bytes, usize::MAX);
        assert_eq!(l.max_nesting_depth, usize::MAX);
    }
}
