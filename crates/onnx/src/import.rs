//! Translating parsed ONNX messages into the Orpheus graph IR.

use std::collections::{HashMap, HashSet};

use orpheus_graph::{AttrValue, Attributes, Graph, Node, OpKind, ValueInfo};
use orpheus_tensor::Tensor;

use crate::error::OnnxError;
use crate::limits::ImportLimits;
use crate::proto::{ModelProto, TensorProto, DATA_TYPE_FLOAT, DATA_TYPE_INT64};

/// Imports an ONNX model from its serialized bytes.
///
/// Structural normalizations applied during import (all standard ONNX
/// variability real exporters produce):
///
/// * weights listed as graph inputs are dropped from the input list;
/// * `Reshape`'s shape input (an int64 initializer) becomes a static
///   `shape` attribute;
/// * opset-11 `Clip` min/max inputs become `min`/`max` attributes;
/// * extra outputs (dropout masks, BN running stats) are trimmed.
///
/// # Errors
///
/// * [`OnnxError::Wire`] for malformed protobuf.
/// * [`OnnxError::Model`] for structurally invalid models.
/// * [`OnnxError::Unsupported`] for features outside the supported subset.
/// * [`OnnxError::Graph`] if the translated graph fails validation.
/// * [`OnnxError::LimitExceeded`] if the model crosses [`ImportLimits::default`].
pub fn import_model(bytes: &[u8]) -> Result<Graph, OnnxError> {
    import_model_with_limits(bytes, &ImportLimits::default())
}

/// Imports an ONNX model under explicit resource limits.
///
/// Same normalizations as [`import_model`]; every limit in `limits` is
/// enforced before the corresponding allocation, so untrusted bytes cannot
/// drive memory use past the configured budget.
///
/// # Errors
///
/// As [`import_model`], with [`OnnxError::LimitExceeded`] reported against
/// the provided `limits`.
pub fn import_model_with_limits(bytes: &[u8], limits: &ImportLimits) -> Result<Graph, OnnxError> {
    let model = ModelProto::parse_with_limits(bytes, limits)?;
    let graph_proto = model
        .graph
        .ok_or_else(|| OnnxError::Model("model has no graph".into()))?;

    let mut graph = Graph::new(if graph_proto.name.is_empty() {
        "imported"
    } else {
        &graph_proto.name
    });

    // Initializers: float tensors become weights; int64 tensors are kept
    // aside for shape arguments.
    let mut int_constants: HashMap<String, Vec<i64>> = HashMap::new();
    let mut initializer_names: HashSet<String> = HashSet::new();
    for init in &graph_proto.initializers {
        initializer_names.insert(init.name.clone());
        match init.data_type {
            DATA_TYPE_FLOAT => {
                graph.add_initializer(&init.name, tensor_from_proto(init, limits)?);
            }
            DATA_TYPE_INT64 => {
                int_constants.insert(init.name.clone(), init.int64_data.clone());
            }
            other => {
                return Err(OnnxError::Unsupported(format!(
                    "initializer {} has data type {other}",
                    init.name
                )))
            }
        }
    }

    // Graph inputs, minus any that are really weights. Dynamic dims
    // (dim_param, imported as 0) and negative dims normalize to 1.
    for input in &graph_proto.inputs {
        if initializer_names.contains(&input.name) {
            continue;
        }
        let dims: Vec<usize> = input
            .dims
            .iter()
            .map(|&d| if d <= 0 { 1 } else { d as usize })
            .collect();
        // The engine allocates an input-sized buffer later; bound it now.
        let elems = dims
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or_else(|| {
                OnnxError::Model(format!(
                    "input {}: dims {:?} overflow",
                    input.name, input.dims
                ))
            })?;
        if elems > limits.max_tensor_elements {
            return Err(OnnxError::LimitExceeded {
                what: format!("input {} elements", input.name),
                limit: limits.max_tensor_elements as u64,
                actual: elems as u64,
            });
        }
        graph.add_input(ValueInfo::new(&input.name, &dims));
    }

    for (idx, node_proto) in graph_proto.nodes.iter().enumerate() {
        let op = OpKind::from_onnx_name(&node_proto.op_type);
        let mut attrs = Attributes::new();
        for attr in &node_proto.attributes {
            let value = if let Some(f) = attr.f {
                AttrValue::Float(f)
            } else if let Some(i) = attr.i {
                AttrValue::Int(i)
            } else if let Some(s) = &attr.s {
                AttrValue::Str(s.clone())
            } else if !attr.floats.is_empty() {
                AttrValue::Floats(attr.floats.clone())
            } else {
                AttrValue::Ints(attr.ints.clone())
            };
            attrs.set(&attr.name, value);
        }

        let mut inputs = node_proto.inputs.clone();
        let mut outputs = node_proto.outputs.clone();

        match op {
            OpKind::Reshape
                // Shape comes as a second (int64 initializer) input.
                if attrs.get("shape").is_none() => {
                    let shape_name = inputs.get(1).cloned().ok_or_else(|| {
                        OnnxError::Model(format!("Reshape {} missing shape input", node_proto.name))
                    })?;
                    let spec = int_constants.get(&shape_name).ok_or_else(|| {
                        OnnxError::Unsupported(format!(
                            "Reshape {} has a dynamic shape input",
                            node_proto.name
                        ))
                    })?;
                    attrs.set("shape", AttrValue::Ints(spec.clone()));
                    inputs.truncate(1);
                }
            OpKind::Clip
                // Opset >= 11 passes bounds as inputs; fold them to attrs.
                if inputs.len() > 1 => {
                    if let Some(min_name) = inputs.get(1).filter(|n| !n.is_empty()) {
                        if let Some(t) = graph.initializer(min_name) {
                            attrs.set("min", AttrValue::Float(t.as_slice()[0]));
                        }
                    }
                    if let Some(max_name) = inputs.get(2).filter(|n| !n.is_empty()) {
                        if let Some(t) = graph.initializer(max_name) {
                            attrs.set("max", AttrValue::Float(t.as_slice()[0]));
                        }
                    }
                    inputs.truncate(1);
                }
            OpKind::Pad
                // Opset >= 11 passes pads (and the fill value) as inputs.
                if attrs.get("pads").is_none() && inputs.len() > 1 => {
                    let pads_name = &inputs[1];
                    let spec = int_constants.get(pads_name).ok_or_else(|| {
                        OnnxError::Unsupported(format!(
                            "Pad {} has a dynamic pads input",
                            node_proto.name
                        ))
                    })?;
                    attrs.set("pads", AttrValue::Ints(spec.clone()));
                    if let Some(value_name) = inputs.get(2).filter(|n| !n.is_empty()) {
                        if let Some(t) = graph.initializer(value_name) {
                            attrs.set("value", AttrValue::Float(t.as_slice()[0]));
                        }
                    }
                    inputs.truncate(1);
                }
            OpKind::ReduceMean
                // Opset >= 18 passes axes as an input.
                if attrs.get("axes").is_none() && inputs.len() > 1 => {
                    if let Some(spec) = int_constants.get(&inputs[1]) {
                        attrs.set("axes", AttrValue::Ints(spec.clone()));
                        inputs.truncate(1);
                    }
                }
            OpKind::Dropout | OpKind::BatchNormalization | OpKind::MaxPool => {
                // Trim auxiliary outputs (mask, running stats, indices).
                outputs.truncate(1);
            }
            _ => {}
        }

        let name = if node_proto.name.is_empty() {
            format!("{}_{idx}", node_proto.op_type.to_lowercase())
        } else {
            node_proto.name.clone()
        };
        let input_refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
        let output_refs: Vec<&str> = outputs.iter().map(String::as_str).collect();
        graph.add_node(Node::new(&name, op, &input_refs, &output_refs).with_attrs(attrs));
    }

    for output in &graph_proto.outputs {
        graph.add_output(&output.name);
    }

    graph.validate()?;
    Ok(graph)
}

/// Converts a float `TensorProto` to a dense tensor.
///
/// Dims must be positive (a weight with a zero or negative dim is malformed,
/// and downstream passes assume non-empty tensors), their product must not
/// overflow, and the element count must fit the configured limits — all
/// checked before the payload is cloned.
fn tensor_from_proto(proto: &TensorProto, limits: &ImportLimits) -> Result<Tensor, OnnxError> {
    let mut elems: usize = 1;
    let mut dims = Vec::with_capacity(proto.dims.len());
    for &d in &proto.dims {
        if d <= 0 {
            return Err(OnnxError::Model(format!(
                "initializer {}: non-positive dim {d} (dims {:?})",
                proto.name, proto.dims
            )));
        }
        let d = d as usize;
        elems = elems.checked_mul(d).ok_or_else(|| {
            OnnxError::Model(format!(
                "initializer {}: dims {:?} overflow",
                proto.name, proto.dims
            ))
        })?;
        dims.push(d);
    }
    if elems > limits.max_tensor_elements {
        return Err(OnnxError::LimitExceeded {
            what: format!("initializer {} elements", proto.name),
            limit: limits.max_tensor_elements as u64,
            actual: elems as u64,
        });
    }
    Tensor::from_vec(proto.float_data.clone(), &dims).map_err(|e| {
        OnnxError::Model(format!(
            "initializer {}: {e} (dims {:?}, {} values)",
            proto.name,
            proto.dims,
            proto.float_data.len()
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{AttributeProto, GraphProto, NodeProto, ValueInfoProto};

    fn wrap(graph: GraphProto) -> Vec<u8> {
        ModelProto {
            ir_version: 7,
            producer_name: "test".into(),
            opset_version: 11,
            graph: Some(graph),
        }
        .serialize()
    }

    fn float_init(name: &str, dims: &[i64], data: Vec<f32>) -> TensorProto {
        TensorProto {
            name: name.into(),
            dims: dims.to_vec(),
            data_type: DATA_TYPE_FLOAT,
            float_data: data,
            int64_data: vec![],
        }
    }

    #[test]
    fn imports_conv_model() {
        let bytes = wrap(GraphProto {
            name: "m".into(),
            nodes: vec![NodeProto {
                name: "".into(),
                op_type: "Conv".into(),
                inputs: vec!["x".into(), "w".into()],
                outputs: vec!["y".into()],
                attributes: vec![AttributeProto {
                    name: "strides".into(),
                    ints: vec![1, 1],
                    ..AttributeProto::default()
                }],
            }],
            initializers: vec![float_init("w", &[1, 1, 1, 1], vec![2.0])],
            inputs: vec![
                ValueInfoProto {
                    name: "x".into(),
                    dims: vec![1, 1, 2, 2],
                },
                // Weight also listed as an input, as some exporters do.
                ValueInfoProto {
                    name: "w".into(),
                    dims: vec![1, 1, 1, 1],
                },
            ],
            outputs: vec![ValueInfoProto {
                name: "y".into(),
                dims: vec![],
            }],
        });
        let g = import_model(&bytes).unwrap();
        assert_eq!(g.inputs().len(), 1, "weight must not be a graph input");
        assert_eq!(g.nodes().len(), 1);
        assert_eq!(g.nodes()[0].op, OpKind::Conv);
        assert!(!g.nodes()[0].name.is_empty(), "anonymous node gets a name");
        assert_eq!(g.initializer("w").unwrap().as_slice(), &[2.0]);
    }

    #[test]
    fn reshape_shape_input_becomes_attribute() {
        let bytes = wrap(GraphProto {
            name: "m".into(),
            nodes: vec![NodeProto {
                name: "rs".into(),
                op_type: "Reshape".into(),
                inputs: vec!["x".into(), "shape".into()],
                outputs: vec!["y".into()],
                attributes: vec![],
            }],
            initializers: vec![TensorProto {
                name: "shape".into(),
                dims: vec![2],
                data_type: DATA_TYPE_INT64,
                float_data: vec![],
                int64_data: vec![1, -1],
            }],
            inputs: vec![ValueInfoProto {
                name: "x".into(),
                dims: vec![1, 4],
            }],
            outputs: vec![ValueInfoProto {
                name: "y".into(),
                dims: vec![],
            }],
        });
        let g = import_model(&bytes).unwrap();
        let node = &g.nodes()[0];
        assert_eq!(node.inputs.len(), 1);
        assert_eq!(node.attrs.get("shape"), Some(&AttrValue::Ints(vec![1, -1])));
    }

    #[test]
    fn clip_bounds_inputs_become_attributes() {
        let bytes = wrap(GraphProto {
            name: "m".into(),
            nodes: vec![NodeProto {
                name: "clip".into(),
                op_type: "Clip".into(),
                inputs: vec!["x".into(), "lo".into(), "hi".into()],
                outputs: vec!["y".into()],
                attributes: vec![],
            }],
            initializers: vec![
                float_init("lo", &[], vec![0.0]),
                float_init("hi", &[], vec![6.0]),
            ],
            inputs: vec![ValueInfoProto {
                name: "x".into(),
                dims: vec![1, 4],
            }],
            outputs: vec![ValueInfoProto {
                name: "y".into(),
                dims: vec![],
            }],
        });
        let g = import_model(&bytes).unwrap();
        let node = &g.nodes()[0];
        assert_eq!(node.inputs.len(), 1);
        assert_eq!(node.attrs.float_or("min", -1.0), 0.0);
        assert_eq!(node.attrs.float_or("max", -1.0), 6.0);
    }

    #[test]
    fn dropout_mask_output_trimmed() {
        let bytes = wrap(GraphProto {
            name: "m".into(),
            nodes: vec![NodeProto {
                name: "d".into(),
                op_type: "Dropout".into(),
                inputs: vec!["x".into()],
                outputs: vec!["y".into(), "mask".into()],
                attributes: vec![],
            }],
            initializers: vec![],
            inputs: vec![ValueInfoProto {
                name: "x".into(),
                dims: vec![1, 4],
            }],
            outputs: vec![ValueInfoProto {
                name: "y".into(),
                dims: vec![],
            }],
        });
        let g = import_model(&bytes).unwrap();
        assert_eq!(g.nodes()[0].outputs, vec!["y".to_string()]);
    }

    #[test]
    fn rejects_model_without_graph() {
        let bytes = ModelProto {
            ir_version: 7,
            producer_name: "t".into(),
            opset_version: 11,
            graph: None,
        }
        .serialize();
        assert!(matches!(import_model(&bytes), Err(OnnxError::Model(_))));
    }

    #[test]
    fn rejects_initializer_shape_mismatch() {
        let bytes = wrap(GraphProto {
            name: "m".into(),
            nodes: vec![],
            initializers: vec![float_init("w", &[2, 2], vec![1.0])], // 1 value, 4 expected
            inputs: vec![],
            outputs: vec![],
        });
        assert!(import_model(&bytes).is_err());
    }

    #[test]
    fn unknown_op_becomes_custom() {
        let bytes = wrap(GraphProto {
            name: "m".into(),
            nodes: vec![NodeProto {
                name: "w".into(),
                op_type: "WeirdOp".into(),
                inputs: vec!["x".into()],
                outputs: vec!["y".into()],
                attributes: vec![],
            }],
            initializers: vec![],
            inputs: vec![ValueInfoProto {
                name: "x".into(),
                dims: vec![1],
            }],
            outputs: vec![ValueInfoProto {
                name: "y".into(),
                dims: vec![],
            }],
        });
        let g = import_model(&bytes).unwrap();
        assert_eq!(g.nodes()[0].op, OpKind::Custom("WeirdOp".into()));
    }
}
