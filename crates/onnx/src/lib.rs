//! ONNX model import/export for Orpheus.
//!
//! The paper's second contribution is "a system to parse pre-trained models
//! exported to the ONNX format from popular training frameworks". ONNX files
//! are protobuf messages; to honour the paper's minimal-dependency design
//! this crate implements the protobuf **wire format** from scratch
//! ([`wire`]), the subset of ONNX messages the five evaluation models need
//! ([`proto`]), and the translation into the Orpheus graph IR ([`import`]).
//!
//! The exporter ([`export`]) serializes an Orpheus graph back to valid ONNX
//! bytes; the model zoo uses it so that every model in the repository
//! genuinely travels through the ONNX parsing path before it is executed.
//!
//! # Examples
//!
//! ```
//! use orpheus_graph::{Graph, Node, OpKind, ValueInfo};
//! use orpheus_onnx::{export_model, import_model};
//!
//! let mut g = Graph::new("round-trip");
//! g.add_input(ValueInfo::new("x", &[1, 3, 4, 4]));
//! g.add_node(Node::new("relu", OpKind::Relu, &["x"], &["y"]));
//! g.add_output("y");
//!
//! let bytes = export_model(&g).unwrap();
//! let back = import_model(&bytes).unwrap();
//! assert_eq!(back.nodes().len(), 1);
//! ```

#![forbid(unsafe_code)]
// Untrusted-input crate: panicking escape hatches are forbidden outside tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod error;
pub mod export;
pub mod fuzz;
pub mod import;
pub mod limits;
pub mod proto;
pub mod wire;

pub use error::OnnxError;
pub use export::export_model;
pub use fuzz::{fuzz_import, FuzzReport};
pub use import::{import_model, import_model_with_limits};
pub use limits::ImportLimits;
