//! Protobuf wire-format primitives, implemented from scratch.
//!
//! Protobuf encodes a message as a sequence of `(tag, payload)` records where
//! `tag = (field_number << 3) | wire_type`. Only the wire types ONNX uses
//! are implemented:
//!
//! | wire type | meaning | used for |
//! |---|---|---|
//! | 0 | varint | int32/int64/enum/bool |
//! | 1 | 64-bit | double (skipped) |
//! | 2 | length-delimited | strings, bytes, nested messages, packed arrays |
//! | 5 | 32-bit | float |

use crate::error::OnnxError;

/// A protobuf wire type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireType {
    /// Base-128 varint.
    Varint,
    /// Fixed 8 bytes.
    Fixed64,
    /// Length-prefixed bytes.
    LengthDelimited,
    /// Fixed 4 bytes.
    Fixed32,
}

impl WireType {
    fn from_bits(bits: u64) -> Result<Self, OnnxError> {
        match bits {
            0 => Ok(WireType::Varint),
            1 => Ok(WireType::Fixed64),
            2 => Ok(WireType::LengthDelimited),
            5 => Ok(WireType::Fixed32),
            other => Err(OnnxError::Wire(format!("unknown wire type {other}"))),
        }
    }

    fn to_bits(self) -> u64 {
        match self {
            WireType::Varint => 0,
            WireType::Fixed64 => 1,
            WireType::LengthDelimited => 2,
            WireType::Fixed32 => 5,
        }
    }
}

/// A cursor over protobuf-encoded bytes.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over a byte buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Whether the cursor has consumed every byte.
    pub fn is_at_end(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Reads a base-128 varint.
    ///
    /// # Errors
    ///
    /// Returns [`OnnxError::Wire`] on truncation or a varint longer than 10
    /// bytes.
    pub fn read_varint(&mut self) -> Result<u64, OnnxError> {
        let mut value: u64 = 0;
        for shift in 0..10 {
            let byte = *self
                .buf
                .get(self.pos)
                .ok_or_else(|| OnnxError::Wire("truncated varint".into()))?;
            self.pos += 1;
            value |= ((byte & 0x7f) as u64) << (shift * 7);
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(OnnxError::Wire("varint longer than 10 bytes".into()))
    }

    /// Reads a field tag: `(field_number, wire_type)`.
    ///
    /// # Errors
    ///
    /// Returns [`OnnxError::Wire`] on truncation, an unknown wire type, or
    /// field number 0 (reserved).
    pub fn read_tag(&mut self) -> Result<(u64, WireType), OnnxError> {
        let key = self.read_varint()?;
        let field = key >> 3;
        if field == 0 {
            return Err(OnnxError::Wire("field number 0".into()));
        }
        Ok((field, WireType::from_bits(key & 0x7)?))
    }

    /// Reads a length-delimited byte slice.
    ///
    /// # Errors
    ///
    /// Returns [`OnnxError::Wire`] if the declared length overruns the buffer.
    pub fn read_bytes(&mut self) -> Result<&'a [u8], OnnxError> {
        let len = self.read_varint()? as usize;
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| OnnxError::Wire(format!("length {len} overruns buffer")))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads a length-delimited UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`OnnxError::Wire`] on truncation or invalid UTF-8.
    pub fn read_string(&mut self) -> Result<String, OnnxError> {
        let bytes = self.read_bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| OnnxError::Wire("invalid utf-8 string".into()))
    }

    /// Reads a little-endian f32 (wire type 5).
    ///
    /// # Errors
    ///
    /// Returns [`OnnxError::Wire`] on truncation.
    pub fn read_f32(&mut self) -> Result<f32, OnnxError> {
        let end = self.pos + 4;
        if end > self.buf.len() {
            return Err(OnnxError::Wire("truncated fixed32".into()));
        }
        let v = f32::from_le_bytes(self.buf[self.pos..end].try_into().expect("4 bytes"));
        self.pos = end;
        Ok(v)
    }

    /// Reads a varint as a signed int64 (protobuf two's-complement).
    ///
    /// # Errors
    ///
    /// See [`Reader::read_varint`].
    pub fn read_i64(&mut self) -> Result<i64, OnnxError> {
        Ok(self.read_varint()? as i64)
    }

    /// Skips a field of the given wire type.
    ///
    /// # Errors
    ///
    /// Returns [`OnnxError::Wire`] on truncation.
    pub fn skip(&mut self, wire_type: WireType) -> Result<(), OnnxError> {
        match wire_type {
            WireType::Varint => {
                self.read_varint()?;
            }
            WireType::Fixed64 => {
                if self.pos + 8 > self.buf.len() {
                    return Err(OnnxError::Wire("truncated fixed64".into()));
                }
                self.pos += 8;
            }
            WireType::LengthDelimited => {
                self.read_bytes()?;
            }
            WireType::Fixed32 => {
                if self.pos + 4 > self.buf.len() {
                    return Err(OnnxError::Wire("truncated fixed32".into()));
                }
                self.pos += 4;
            }
        }
        Ok(())
    }

    /// Decodes a packed repeated int64 payload.
    ///
    /// # Errors
    ///
    /// Returns [`OnnxError::Wire`] on truncation inside the payload.
    pub fn decode_packed_i64(payload: &[u8]) -> Result<Vec<i64>, OnnxError> {
        let mut r = Reader::new(payload);
        let mut out = Vec::new();
        while !r.is_at_end() {
            out.push(r.read_i64()?);
        }
        Ok(out)
    }

    /// Decodes a packed repeated float payload.
    ///
    /// # Errors
    ///
    /// Returns [`OnnxError::Wire`] if the payload length is not a multiple of 4.
    pub fn decode_packed_f32(payload: &[u8]) -> Result<Vec<f32>, OnnxError> {
        if !payload.len().is_multiple_of(4) {
            return Err(OnnxError::Wire("packed float payload not 4-aligned".into()));
        }
        Ok(payload
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }
}

/// An append-only protobuf encoder.
#[derive(Debug, Clone, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a raw varint.
    pub fn write_varint(&mut self, mut value: u64) {
        loop {
            let byte = (value & 0x7f) as u8;
            value >>= 7;
            if value == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    fn write_tag(&mut self, field: u64, wire_type: WireType) {
        self.write_varint((field << 3) | wire_type.to_bits());
    }

    /// Writes an int64 field (varint).
    pub fn write_i64(&mut self, field: u64, value: i64) {
        self.write_tag(field, WireType::Varint);
        self.write_varint(value as u64);
    }

    /// Writes a float field (fixed32).
    pub fn write_f32(&mut self, field: u64, value: f32) {
        self.write_tag(field, WireType::Fixed32);
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes a bytes field.
    pub fn write_bytes(&mut self, field: u64, payload: &[u8]) {
        self.write_tag(field, WireType::LengthDelimited);
        self.write_varint(payload.len() as u64);
        self.buf.extend_from_slice(payload);
    }

    /// Writes a string field.
    pub fn write_string(&mut self, field: u64, value: &str) {
        self.write_bytes(field, value.as_bytes());
    }

    /// Writes a nested message field from an already-encoded child.
    pub fn write_message(&mut self, field: u64, child: &Writer) {
        self.write_bytes(field, &child.buf);
    }

    /// Writes a packed repeated int64 field.
    pub fn write_packed_i64(&mut self, field: u64, values: &[i64]) {
        let mut child = Writer::new();
        for &v in values {
            child.write_varint(v as u64);
        }
        self.write_bytes(field, &child.buf);
    }

    /// Writes a packed repeated float field.
    pub fn write_packed_f32(&mut self, field: u64, values: &[f32]) {
        let mut payload = Vec::with_capacity(values.len() * 4);
        for &v in values {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        self.write_bytes(field, &payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        for value in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut w = Writer::new();
            w.write_varint(value);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.read_varint().unwrap(), value);
            assert!(r.is_at_end());
        }
    }

    #[test]
    fn known_varint_encoding() {
        // Protobuf docs example: 300 encodes as [0xAC, 0x02].
        let mut w = Writer::new();
        w.write_varint(300);
        assert_eq!(w.into_bytes(), vec![0xac, 0x02]);
    }

    #[test]
    fn tag_round_trip() {
        let mut w = Writer::new();
        w.write_i64(4, -1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let (field, wt) = r.read_tag().unwrap();
        assert_eq!(field, 4);
        assert_eq!(wt, WireType::Varint);
        assert_eq!(r.read_i64().unwrap(), -1);
    }

    #[test]
    fn string_round_trip() {
        let mut w = Writer::new();
        w.write_string(2, "conv1/weight");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let (field, wt) = r.read_tag().unwrap();
        assert_eq!((field, wt), (2, WireType::LengthDelimited));
        assert_eq!(r.read_string().unwrap(), "conv1/weight");
    }

    #[test]
    fn f32_round_trip() {
        let mut w = Writer::new();
        w.write_f32(2, -1.5e-3);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        r.read_tag().unwrap();
        assert_eq!(r.read_f32().unwrap(), -1.5e-3);
    }

    #[test]
    fn packed_arrays_round_trip() {
        let mut w = Writer::new();
        w.write_packed_i64(1, &[1, -2, 300]);
        w.write_packed_f32(4, &[0.5, -0.25]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        r.read_tag().unwrap();
        let ints = Reader::decode_packed_i64(r.read_bytes().unwrap()).unwrap();
        assert_eq!(ints, vec![1, -2, 300]);
        r.read_tag().unwrap();
        let floats = Reader::decode_packed_f32(r.read_bytes().unwrap()).unwrap();
        assert_eq!(floats, vec![0.5, -0.25]);
    }

    #[test]
    fn truncated_varint_errors() {
        let mut r = Reader::new(&[0x80]);
        assert!(r.read_varint().is_err());
    }

    #[test]
    fn overlong_varint_errors() {
        let mut r = Reader::new(&[0x80; 11]);
        assert!(r.read_varint().is_err());
    }

    #[test]
    fn length_overrun_errors() {
        // Declares 100 bytes, provides 2.
        let mut r = Reader::new(&[100, 1, 2]);
        assert!(r.read_bytes().is_err());
    }

    #[test]
    fn skip_all_wire_types() {
        let mut w = Writer::new();
        w.write_i64(1, 7);
        w.write_f32(2, 1.0);
        w.write_bytes(3, b"abc");
        w.write_string(4, "end");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for _ in 0..3 {
            let (_, wt) = r.read_tag().unwrap();
            r.skip(wt).unwrap();
        }
        let (field, _) = r.read_tag().unwrap();
        assert_eq!(field, 4);
        assert_eq!(r.read_string().unwrap(), "end");
    }

    #[test]
    fn unknown_wire_type_rejected() {
        // tag = field 1, wire type 3 (group start, unsupported).
        let mut r = Reader::new(&[0x0b]);
        assert!(r.read_tag().is_err());
    }

    #[test]
    fn misaligned_packed_floats_rejected() {
        assert!(Reader::decode_packed_f32(&[0, 0, 0]).is_err());
    }
}
