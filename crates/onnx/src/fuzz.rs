//! Deterministic, structure-aware fault-injection fuzzing for the importer.
//!
//! The importer's contract for untrusted bytes is: return `Err` or `Ok`, but
//! never panic and never allocate past [`ImportLimits`]. This module checks
//! that contract offline and reproducibly — no corpus directory, no external
//! fuzzing engine. A [`SmallRng`] (SplitMix64) stream drives every choice,
//! so a `(model bytes, seed, iteration count)` triple replays exactly.
//!
//! Rather than flipping uniform random bytes (which mostly dies in the first
//! varint), the mutator first scans the wire structure of the base model —
//! tag positions, length-prefix positions, whole field records — and aims
//! mutations at those: bit flips inside field records, truncations at record
//! boundaries, length-field inflation, tag/wire-type swaps, and field
//! duplication. Mutations are applied in place and undone afterwards, so a
//! multi-megabyte base model is copied once, not once per iteration.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use orpheus_graph::Graph;
use orpheus_tensor::SmallRng;

use crate::error::OnnxError;
use crate::import::import_model_with_limits;
use crate::limits::ImportLimits;

/// Stop collecting mutation sites past this count; enough for diversity
/// without an unbounded scan of pathological inputs.
const MAX_SITES: usize = 16_384;
/// Do not recurse into length-delimited payloads deeper than this while
/// scanning (mirrors the importer's own nesting limit).
const MAX_SCAN_DEPTH: usize = 8;

/// Outcome counts from a fuzzing run.
///
/// A run is healthy when [`FuzzReport::is_clean`] holds: the importer may
/// accept or reject each mutant, but it must never panic and never hand back
/// a graph that exceeds the configured limits.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuzzReport {
    /// Mutated models fed to the importer.
    pub iterations: u64,
    /// Mutants the importer accepted.
    pub ok: u64,
    /// Rejected with [`OnnxError::Wire`].
    pub wire_errors: u64,
    /// Rejected with [`OnnxError::Model`].
    pub model_errors: u64,
    /// Rejected with [`OnnxError::Unsupported`].
    pub unsupported: u64,
    /// Rejected with [`OnnxError::Graph`].
    pub graph_errors: u64,
    /// Rejected with [`OnnxError::LimitExceeded`].
    pub limit_errors: u64,
    /// Importer panicked (always a bug).
    pub panics: u64,
    /// Importer returned `Ok` with a graph over the limits (always a bug).
    pub limit_violations: u64,
}

impl FuzzReport {
    /// Whether the contract held: no panics, no over-limit accepts.
    pub fn is_clean(&self) -> bool {
        self.panics == 0 && self.limit_violations == 0
    }

    /// Accumulates another report into this one.
    pub fn merge(&mut self, other: &FuzzReport) {
        self.iterations += other.iterations;
        self.ok += other.ok;
        self.wire_errors += other.wire_errors;
        self.model_errors += other.model_errors;
        self.unsupported += other.unsupported;
        self.graph_errors += other.graph_errors;
        self.limit_errors += other.limit_errors;
        self.panics += other.panics;
        self.limit_violations += other.limit_violations;
    }
}

impl fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} iters: {} ok, {} wire, {} model, {} unsupported, {} graph, \
             {} limit | {} panics, {} limit violations",
            self.iterations,
            self.ok,
            self.wire_errors,
            self.model_errors,
            self.unsupported,
            self.graph_errors,
            self.limit_errors,
            self.panics,
            self.limit_violations,
        )
    }
}

/// Mutation sites discovered by scanning the base model's wire structure.
#[derive(Debug, Default)]
struct Sites {
    /// Byte offsets of field tags.
    tags: Vec<usize>,
    /// `(offset, varint width)` of length prefixes.
    lens: Vec<(usize, usize)>,
    /// `(start, end)` spans of whole field records (tag through payload).
    ranges: Vec<(usize, usize)>,
}

impl Sites {
    fn total(&self) -> usize {
        self.tags.len() + self.lens.len() + self.ranges.len()
    }
}

/// Reads a varint, returning `(value, next_pos)`.
fn read_varint(buf: &[u8], mut pos: usize) -> Option<(u64, usize)> {
    let mut value: u64 = 0;
    for shift in 0..10 {
        let byte = *buf.get(pos)?;
        pos += 1;
        value |= ((byte & 0x7f) as u64) << (shift * 7);
        if byte & 0x80 == 0 {
            return Some((value, pos));
        }
    }
    None
}

/// Walks `buf` as a protobuf record sequence, collecting sites at absolute
/// offsets (`base` + local). Returns false if the bytes do not scan cleanly
/// as records, in which case the caller discards whatever was collected.
fn scan(buf: &[u8], base: usize, depth: usize, sites: &mut Sites) -> bool {
    let mut pos = 0;
    while pos < buf.len() {
        if sites.total() >= MAX_SITES {
            return true;
        }
        let rec_start = pos;
        let Some((key, after_tag)) = read_varint(buf, pos) else {
            return false;
        };
        let field = key >> 3;
        if field == 0 {
            return false;
        }
        let rec_end = match key & 0x7 {
            0 => match read_varint(buf, after_tag) {
                Some((_, p)) => p,
                None => return false,
            },
            1 => after_tag + 8,
            2 => {
                let Some((len, after_len)) = read_varint(buf, after_tag) else {
                    return false;
                };
                let Some(end) = after_len
                    .checked_add(len as usize)
                    .filter(|&e| e <= buf.len())
                else {
                    return false;
                };
                sites.lens.push((base + after_tag, after_len - after_tag));
                // Nested messages also scan cleanly as records; raw payloads
                // usually do not. Try, and roll back on failure.
                if depth < MAX_SCAN_DEPTH && len > 0 {
                    let (nt, nl, nr) = (sites.tags.len(), sites.lens.len(), sites.ranges.len());
                    if !scan(&buf[after_len..end], base + after_len, depth + 1, sites) {
                        sites.tags.truncate(nt);
                        sites.lens.truncate(nl);
                        sites.ranges.truncate(nr);
                    }
                }
                end
            }
            5 => after_tag + 4,
            _ => return false,
        };
        if rec_end > buf.len() {
            return false;
        }
        sites.tags.push(base + rec_start);
        sites.ranges.push((base + rec_start, base + rec_end));
        pos = rec_end;
    }
    true
}

fn below(rng: &mut SmallRng, n: usize) -> usize {
    debug_assert!(n > 0);
    (rng.next_u64() % n as u64) as usize
}

/// Feeds one mutant to the importer and tallies the outcome.
fn run_one(bytes: &[u8], limits: &ImportLimits, report: &mut FuzzReport) {
    report.iterations += 1;
    match catch_unwind(AssertUnwindSafe(|| import_model_with_limits(bytes, limits))) {
        Ok(Ok(graph)) => {
            report.ok += 1;
            if !graph_within_limits(&graph, limits) {
                report.limit_violations += 1;
            }
        }
        Ok(Err(OnnxError::Wire(_))) => report.wire_errors += 1,
        Ok(Err(OnnxError::Model(_))) => report.model_errors += 1,
        Ok(Err(OnnxError::Unsupported(_))) => report.unsupported += 1,
        Ok(Err(OnnxError::Graph(_))) => report.graph_errors += 1,
        Ok(Err(OnnxError::LimitExceeded { .. })) => report.limit_errors += 1,
        Err(_) => report.panics += 1,
    }
}

/// Checks that an accepted graph respects the limits it was imported under.
fn graph_within_limits(graph: &Graph, limits: &ImportLimits) -> bool {
    if graph.nodes().len() > limits.max_nodes {
        return false;
    }
    if graph.initializers().len() > limits.max_initializers {
        return false;
    }
    for tensor in graph.initializers().values() {
        if tensor.len() > limits.max_tensor_elements {
            return false;
        }
    }
    for input in graph.inputs() {
        let elems = input
            .dims
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d));
        match elems {
            Some(e) if e <= limits.max_tensor_elements => {}
            _ => return false,
        }
    }
    true
}

/// Runs `iters` deterministic structure-aware mutations of `base` through
/// [`import_model_with_limits`], recording outcomes.
///
/// The same `(base, limits, seed, iters)` always produces the same report.
/// The base model itself is imported first (iteration 0 is the identity
/// mutation) so a broken baseline shows up as a non-`ok` count.
pub fn fuzz_import(base: &[u8], limits: &ImportLimits, seed: u64, iters: u64) -> FuzzReport {
    let mut report = FuzzReport::default();
    if base.is_empty() || iters == 0 {
        return report;
    }
    let mut sites = Sites::default();
    scan(base, 0, 0, &mut sites);

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut scratch = base.to_vec();
    let mut spliced: Vec<u8> = Vec::new();

    run_one(base, limits, &mut report);
    for _ in 1..iters {
        match below(&mut rng, 5) {
            // Bit flip inside a field record.
            0 => {
                let (start, end) = pick_range(&sites, base.len(), &mut rng);
                let off = start + below(&mut rng, end - start);
                let bit = 1u8 << below(&mut rng, 8);
                scratch[off] ^= bit;
                run_one(&scratch, limits, &mut report);
                scratch[off] ^= bit;
            }
            // Truncation, biased toward record boundaries.
            1 => {
                let cut = if !sites.ranges.is_empty() && rng.next_u64() & 1 == 0 {
                    sites.ranges[below(&mut rng, sites.ranges.len())].0
                } else {
                    below(&mut rng, base.len())
                };
                run_one(&scratch[..cut], limits, &mut report);
            }
            // Length-field inflation: saturate the varint in place, keeping
            // its byte width so the surrounding framing survives.
            2 if !sites.lens.is_empty() => {
                let (off, width) = sites.lens[below(&mut rng, sites.lens.len())];
                let saved: Vec<u8> = scratch[off..off + width].to_vec();
                for i in 0..width {
                    scratch[off + i] = if i + 1 < width { 0xff } else { 0x7f };
                }
                run_one(&scratch, limits, &mut report);
                scratch[off..off + width].copy_from_slice(&saved);
            }
            // Tag / wire-type swap (including the invalid wire types 3-7).
            3 if !sites.tags.is_empty() => {
                let off = sites.tags[below(&mut rng, sites.tags.len())];
                let saved = scratch[off];
                scratch[off] = (((1 + below(&mut rng, 15)) << 3) | below(&mut rng, 8)) as u8;
                run_one(&scratch, limits, &mut report);
                scratch[off] = saved;
            }
            // Field duplication (repeated-field and last-wins stress).
            4 if !sites.ranges.is_empty() => {
                let (start, end) = sites.ranges[below(&mut rng, sites.ranges.len())];
                spliced.clear();
                spliced.extend_from_slice(&base[..end]);
                spliced.extend_from_slice(&base[start..end]);
                spliced.extend_from_slice(&base[end..]);
                run_one(&spliced, limits, &mut report);
            }
            // Chosen mutation has no sites on this input: random bit flip.
            _ => {
                let off = below(&mut rng, base.len());
                let bit = 1u8 << below(&mut rng, 8);
                scratch[off] ^= bit;
                run_one(&scratch, limits, &mut report);
                scratch[off] ^= bit;
            }
        }
    }
    report
}

/// Picks a field-record span, falling back to the whole buffer.
fn pick_range(sites: &Sites, len: usize, rng: &mut SmallRng) -> (usize, usize) {
    if sites.ranges.is_empty() {
        return (0, len);
    }
    let (start, end) = sites.ranges[below(rng, sites.ranges.len())];
    if start >= end {
        (0, len)
    } else {
        (start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orpheus_graph::{Graph, Node, OpKind, ValueInfo};

    fn tiny_model_bytes() -> Vec<u8> {
        let mut g = Graph::new("fuzz-base");
        g.add_input(ValueInfo::new("x", &[1, 3, 8, 8]));
        g.add_node(Node::new("relu", OpKind::Relu, &["x"], &["y"]));
        g.add_output("y");
        crate::export_model(&g).unwrap()
    }

    #[test]
    fn scan_finds_structure() {
        let bytes = tiny_model_bytes();
        let mut sites = Sites::default();
        assert!(scan(&bytes, 0, 0, &mut sites));
        assert!(!sites.tags.is_empty());
        assert!(!sites.lens.is_empty());
        assert!(!sites.ranges.is_empty());
    }

    #[test]
    fn fuzz_is_deterministic() {
        let bytes = tiny_model_bytes();
        let limits = ImportLimits::default();
        let a = fuzz_import(&bytes, &limits, 0xfeed, 300);
        let b = fuzz_import(&bytes, &limits, 0xfeed, 300);
        assert_eq!(a, b);
        assert_eq!(a.iterations, 300);
        assert!(a.is_clean(), "{a}");
    }

    #[test]
    fn different_seeds_explore_differently() {
        let bytes = tiny_model_bytes();
        let limits = ImportLimits::default();
        let a = fuzz_import(&bytes, &limits, 1, 300);
        let b = fuzz_import(&bytes, &limits, 2, 300);
        assert_ne!(a, b);
    }

    #[test]
    fn baseline_import_counts_as_ok() {
        let bytes = tiny_model_bytes();
        let limits = ImportLimits::default();
        let r = fuzz_import(&bytes, &limits, 3, 1);
        assert_eq!(r.ok, 1);
    }

    #[test]
    fn tight_limits_surface_as_limit_errors_not_violations() {
        let bytes = tiny_model_bytes();
        // Everything over 4 input elements must be rejected, never accepted.
        let limits = ImportLimits::default().with_max_tensor_elements(4);
        let r = fuzz_import(&bytes, &limits, 4, 300);
        assert!(r.is_clean(), "{r}");
        assert!(r.limit_errors > 0, "{r}");
        // The unmutated base (192 input elements) must itself be rejected;
        // mutants that import Ok are ones where the mutation removed the
        // oversized input, and is_clean already checks they fit the limits.
        let baseline = fuzz_import(&bytes, &limits, 4, 1);
        assert_eq!(baseline.limit_errors, 1, "{baseline}");
    }
}
