//! The ONNX message subset: `ModelProto`, `GraphProto`, `NodeProto`,
//! `AttributeProto`, `TensorProto`, `ValueInfoProto`.
//!
//! Field numbers follow `onnx.proto3`. Unknown fields are skipped, so models
//! exported by real training frameworks (which populate doc strings,
//! metadata, etc.) still parse.

use crate::error::OnnxError;
use crate::limits::ImportLimits;
use crate::wire::{Reader, WireType, Writer};

/// ONNX `TensorProto.DataType.FLOAT`.
pub const DATA_TYPE_FLOAT: i64 = 1;
/// ONNX `TensorProto.DataType.INT64`.
pub const DATA_TYPE_INT64: i64 = 7;

/// Top-level ONNX model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelProto {
    /// ONNX IR version.
    pub ir_version: i64,
    /// Producer tool name.
    pub producer_name: String,
    /// Default-domain opset version.
    pub opset_version: i64,
    /// The computation graph.
    pub graph: Option<GraphProto>,
}

/// ONNX graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GraphProto {
    /// Graph name.
    pub name: String,
    /// Operator nodes.
    pub nodes: Vec<NodeProto>,
    /// Weight initializers.
    pub initializers: Vec<TensorProto>,
    /// Declared inputs (including weights in some exporters).
    pub inputs: Vec<ValueInfoProto>,
    /// Declared outputs.
    pub outputs: Vec<ValueInfoProto>,
}

/// ONNX operator node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeProto {
    /// Node name (may be empty in real exports).
    pub name: String,
    /// Operator type, e.g. `"Conv"`.
    pub op_type: String,
    /// Input value names ("" marks an omitted optional input).
    pub inputs: Vec<String>,
    /// Output value names.
    pub outputs: Vec<String>,
    /// Attributes.
    pub attributes: Vec<AttributeProto>,
}

/// ONNX attribute.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttributeProto {
    /// Attribute name.
    pub name: String,
    /// Float payload (`type = FLOAT`).
    pub f: Option<f32>,
    /// Int payload (`type = INT`).
    pub i: Option<i64>,
    /// String payload (`type = STRING`).
    pub s: Option<String>,
    /// Int-list payload (`type = INTS`).
    pub ints: Vec<i64>,
    /// Float-list payload (`type = FLOATS`).
    pub floats: Vec<f32>,
}

/// ONNX tensor literal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TensorProto {
    /// Tensor name.
    pub name: String,
    /// Dimensions.
    pub dims: Vec<i64>,
    /// Element type (`DATA_TYPE_FLOAT` or `DATA_TYPE_INT64`).
    pub data_type: i64,
    /// Float payload (from `float_data` or `raw_data`).
    pub float_data: Vec<f32>,
    /// Int64 payload (from `int64_data` or `raw_data`).
    pub int64_data: Vec<i64>,
}

/// ONNX value declaration (name + static tensor shape).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ValueInfoProto {
    /// Value name.
    pub name: String,
    /// Static dims (dim_param dimensions import as 0).
    pub dims: Vec<i64>,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Tracks limit budgets while a message tree is parsed.
///
/// Every check runs *before* the allocation it guards: string bytes before
/// `to_vec`, packed element counts before decoding, repeated-message counts
/// before the `push`, nesting depth before recursing into a child message.
pub(crate) struct LimitGuard<'l> {
    limits: &'l ImportLimits,
    depth: usize,
}

impl<'l> LimitGuard<'l> {
    pub(crate) fn new(limits: &'l ImportLimits) -> Self {
        LimitGuard { limits, depth: 0 }
    }

    fn exceeded(what: &str, actual: usize, limit: usize) -> OnnxError {
        OnnxError::LimitExceeded {
            what: what.into(),
            limit: limit as u64,
            actual: actual as u64,
        }
    }

    /// Descends into a nested message; callers pair with [`Self::exit`].
    fn enter(&mut self) -> Result<(), OnnxError> {
        if self.depth >= self.limits.max_nesting_depth {
            return Err(Self::exceeded(
                "message nesting depth",
                self.depth + 1,
                self.limits.max_nesting_depth,
            ));
        }
        self.depth += 1;
        Ok(())
    }

    fn exit(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    fn check_count(&self, what: &str, next: usize, limit: usize) -> Result<(), OnnxError> {
        if next > limit {
            return Err(Self::exceeded(what, next, limit));
        }
        Ok(())
    }

    /// Reads a length-delimited string, bounding its byte length before the
    /// copy out of the wire buffer.
    fn read_string(&self, r: &mut Reader, what: &str) -> Result<String, OnnxError> {
        let bytes = r.read_bytes()?;
        self.check_count(what, bytes.len(), self.limits.max_string_bytes)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| OnnxError::Wire("invalid utf-8 string".into()))
    }

    /// Decodes a packed int64 array; each varint occupies at least one byte,
    /// so the payload length bounds the element count before allocation.
    fn packed_i64(&self, payload: &[u8], what: &str) -> Result<Vec<i64>, OnnxError> {
        self.check_count(what, payload.len(), self.limits.max_tensor_elements)?;
        Reader::decode_packed_i64(payload)
    }

    /// Decodes a packed float array, bounding the element count first.
    fn packed_f32(&self, payload: &[u8], what: &str) -> Result<Vec<f32>, OnnxError> {
        self.check_count(what, payload.len() / 4, self.limits.max_tensor_elements)?;
        Reader::decode_packed_f32(payload)
    }
}

impl ModelProto {
    /// Parses a serialized `ModelProto` under [`ImportLimits::default`].
    ///
    /// # Errors
    ///
    /// Returns [`OnnxError::Wire`] for malformed protobuf and
    /// [`OnnxError::LimitExceeded`] for inputs over the default limits.
    pub fn parse(bytes: &[u8]) -> Result<Self, OnnxError> {
        Self::parse_with_limits(bytes, &ImportLimits::default())
    }

    /// Parses a serialized `ModelProto` under explicit [`ImportLimits`].
    ///
    /// # Errors
    ///
    /// Returns [`OnnxError::Wire`] for malformed protobuf and
    /// [`OnnxError::LimitExceeded`] when a bound would be crossed; the check
    /// always fires before the allocation it guards.
    pub fn parse_with_limits(bytes: &[u8], limits: &ImportLimits) -> Result<Self, OnnxError> {
        let mut g = LimitGuard::new(limits);
        g.check_count("model bytes", bytes.len(), limits.max_model_bytes)?;
        let mut model = ModelProto::default();
        let mut r = Reader::new(bytes);
        while !r.is_at_end() {
            let (field, wt) = r.read_tag()?;
            match field {
                1 => model.ir_version = r.read_i64()?,
                2 => model.producer_name = g.read_string(&mut r, "producer name bytes")?,
                7 => model.graph = Some(GraphProto::parse(r.read_bytes()?, &mut g)?),
                8 => {
                    // OperatorSetIdProto { domain = 1, version = 2 }
                    g.enter()?;
                    let mut sub = Reader::new(r.read_bytes()?);
                    while !sub.is_at_end() {
                        let (sf, swt) = sub.read_tag()?;
                        match sf {
                            2 => model.opset_version = sub.read_i64()?,
                            _ => sub.skip(swt)?,
                        }
                    }
                    g.exit();
                }
                _ => r.skip(wt)?,
            }
        }
        Ok(model)
    }

    /// Serializes the model.
    pub fn serialize(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.write_i64(1, self.ir_version);
        if !self.producer_name.is_empty() {
            w.write_string(2, &self.producer_name);
        }
        let mut opset = Writer::new();
        opset.write_string(1, "");
        opset.write_i64(2, self.opset_version);
        w.write_message(8, &opset);
        if let Some(g) = &self.graph {
            w.write_message(7, &g.to_writer());
        }
        w.into_bytes()
    }
}

impl GraphProto {
    fn parse(bytes: &[u8], g: &mut LimitGuard) -> Result<Self, OnnxError> {
        g.enter()?;
        let mut graph = GraphProto::default();
        let mut r = Reader::new(bytes);
        while !r.is_at_end() {
            let (field, wt) = r.read_tag()?;
            match field {
                1 => {
                    g.check_count("graph nodes", graph.nodes.len() + 1, g.limits.max_nodes)?;
                    graph.nodes.push(NodeProto::parse(r.read_bytes()?, g)?);
                }
                2 => graph.name = g.read_string(&mut r, "graph name bytes")?,
                5 => {
                    g.check_count(
                        "graph initializers",
                        graph.initializers.len() + 1,
                        g.limits.max_initializers,
                    )?;
                    graph
                        .initializers
                        .push(TensorProto::parse(r.read_bytes()?, g)?);
                }
                11 => {
                    g.check_count("graph inputs", graph.inputs.len() + 1, g.limits.max_nodes)?;
                    graph
                        .inputs
                        .push(ValueInfoProto::parse(r.read_bytes()?, g)?);
                }
                12 => {
                    g.check_count("graph outputs", graph.outputs.len() + 1, g.limits.max_nodes)?;
                    graph
                        .outputs
                        .push(ValueInfoProto::parse(r.read_bytes()?, g)?);
                }
                _ => r.skip(wt)?,
            }
        }
        g.exit();
        Ok(graph)
    }

    fn to_writer(&self) -> Writer {
        let mut w = Writer::new();
        for node in &self.nodes {
            w.write_message(1, &node.to_writer());
        }
        w.write_string(2, &self.name);
        for init in &self.initializers {
            w.write_message(5, &init.to_writer());
        }
        for input in &self.inputs {
            w.write_message(11, &input.to_writer());
        }
        for output in &self.outputs {
            w.write_message(12, &output.to_writer());
        }
        w
    }
}

impl NodeProto {
    fn parse(bytes: &[u8], g: &mut LimitGuard) -> Result<Self, OnnxError> {
        g.enter()?;
        let mut node = NodeProto::default();
        let mut r = Reader::new(bytes);
        while !r.is_at_end() {
            let (field, wt) = r.read_tag()?;
            match field {
                1 => node
                    .inputs
                    .push(g.read_string(&mut r, "node input name bytes")?),
                2 => node
                    .outputs
                    .push(g.read_string(&mut r, "node output name bytes")?),
                3 => node.name = g.read_string(&mut r, "node name bytes")?,
                4 => node.op_type = g.read_string(&mut r, "node op type bytes")?,
                5 => node
                    .attributes
                    .push(AttributeProto::parse(r.read_bytes()?, g)?),
                _ => r.skip(wt)?,
            }
        }
        g.exit();
        Ok(node)
    }

    fn to_writer(&self) -> Writer {
        let mut w = Writer::new();
        for input in &self.inputs {
            w.write_string(1, input);
        }
        for output in &self.outputs {
            w.write_string(2, output);
        }
        if !self.name.is_empty() {
            w.write_string(3, &self.name);
        }
        w.write_string(4, &self.op_type);
        for attr in &self.attributes {
            w.write_message(5, &attr.to_writer());
        }
        w
    }
}

impl AttributeProto {
    fn parse(bytes: &[u8], g: &mut LimitGuard) -> Result<Self, OnnxError> {
        g.enter()?;
        let mut attr = AttributeProto::default();
        let mut r = Reader::new(bytes);
        while !r.is_at_end() {
            let (field, wt) = r.read_tag()?;
            match (field, wt) {
                (1, _) => attr.name = g.read_string(&mut r, "attribute name bytes")?,
                (2, _) => attr.f = Some(r.read_f32()?),
                (3, _) => attr.i = Some(r.read_i64()?),
                (4, _) => {
                    let payload = r.read_bytes()?;
                    g.check_count(
                        "attribute string bytes",
                        payload.len(),
                        g.limits.max_string_bytes,
                    )?;
                    attr.s = Some(String::from_utf8_lossy(payload).into_owned());
                }
                (7, WireType::LengthDelimited) => {
                    attr.floats = g.packed_f32(r.read_bytes()?, "attribute float elements")?;
                }
                (7, WireType::Fixed32) => attr.floats.push(r.read_f32()?),
                (8, WireType::LengthDelimited) => {
                    attr.ints = g.packed_i64(r.read_bytes()?, "attribute int elements")?;
                }
                (8, WireType::Varint) => attr.ints.push(r.read_i64()?),
                _ => r.skip(wt)?,
            }
        }
        g.exit();
        Ok(attr)
    }

    fn to_writer(&self) -> Writer {
        // AttributeProto.type values.
        const T_FLOAT: i64 = 1;
        const T_INT: i64 = 2;
        const T_STRING: i64 = 3;
        const T_FLOATS: i64 = 6;
        const T_INTS: i64 = 7;
        let mut w = Writer::new();
        w.write_string(1, &self.name);
        if let Some(f) = self.f {
            w.write_f32(2, f);
            w.write_i64(20, T_FLOAT);
        } else if let Some(i) = self.i {
            w.write_i64(3, i);
            w.write_i64(20, T_INT);
        } else if let Some(s) = &self.s {
            w.write_bytes(4, s.as_bytes());
            w.write_i64(20, T_STRING);
        } else if !self.floats.is_empty() {
            w.write_packed_f32(7, &self.floats);
            w.write_i64(20, T_FLOATS);
        } else {
            w.write_packed_i64(8, &self.ints);
            w.write_i64(20, T_INTS);
        }
        w
    }
}

impl TensorProto {
    fn parse(bytes: &[u8], g: &mut LimitGuard) -> Result<Self, OnnxError> {
        g.enter()?;
        let mut t = TensorProto::default();
        // Raw data stays a borrowed slice until the dtype is known, so no
        // copy of an over-limit payload is ever made.
        let mut raw: Option<&[u8]> = None;
        let mut r = Reader::new(bytes);
        while !r.is_at_end() {
            let (field, wt) = r.read_tag()?;
            match (field, wt) {
                (1, WireType::LengthDelimited) => {
                    t.dims = g.packed_i64(r.read_bytes()?, "tensor dims")?;
                }
                (1, WireType::Varint) => t.dims.push(r.read_i64()?),
                (2, _) => t.data_type = r.read_i64()?,
                (4, WireType::LengthDelimited) => {
                    t.float_data = g.packed_f32(r.read_bytes()?, "tensor float elements")?;
                }
                (4, WireType::Fixed32) => t.float_data.push(r.read_f32()?),
                (7, WireType::LengthDelimited) => {
                    t.int64_data = g.packed_i64(r.read_bytes()?, "tensor int64 elements")?;
                }
                (7, WireType::Varint) => t.int64_data.push(r.read_i64()?),
                (8, _) => t.name = g.read_string(&mut r, "tensor name bytes")?,
                (9, _) => raw = Some(r.read_bytes()?),
                _ => r.skip(wt)?,
            }
        }
        if let Some(raw) = raw {
            match t.data_type {
                DATA_TYPE_FLOAT => {
                    if raw.len() % 4 != 0 {
                        return Err(OnnxError::Wire("raw float data not 4-aligned".into()));
                    }
                    g.check_count(
                        "tensor raw float elements",
                        raw.len() / 4,
                        g.limits.max_tensor_elements,
                    )?;
                    t.float_data = raw
                        .chunks_exact(4)
                        .map(|c| f32::from_le_bytes(c.try_into().unwrap_or([0; 4])))
                        .collect();
                }
                DATA_TYPE_INT64 => {
                    if raw.len() % 8 != 0 {
                        return Err(OnnxError::Wire("raw int64 data not 8-aligned".into()));
                    }
                    g.check_count(
                        "tensor raw int64 elements",
                        raw.len() / 8,
                        g.limits.max_tensor_elements,
                    )?;
                    t.int64_data = raw
                        .chunks_exact(8)
                        .map(|c| i64::from_le_bytes(c.try_into().unwrap_or([0; 8])))
                        .collect();
                }
                other => {
                    return Err(OnnxError::Unsupported(format!(
                        "tensor {} has data type {other}",
                        t.name
                    )))
                }
            }
        }
        g.exit();
        Ok(t)
    }

    fn to_writer(&self) -> Writer {
        let mut w = Writer::new();
        w.write_packed_i64(1, &self.dims);
        w.write_i64(2, self.data_type);
        w.write_string(8, &self.name);
        // Serialize through raw_data, the layout modern exporters use.
        if self.data_type == DATA_TYPE_INT64 {
            let mut raw = Vec::with_capacity(self.int64_data.len() * 8);
            for &v in &self.int64_data {
                raw.extend_from_slice(&v.to_le_bytes());
            }
            w.write_bytes(9, &raw);
        } else {
            let mut raw = Vec::with_capacity(self.float_data.len() * 4);
            for &v in &self.float_data {
                raw.extend_from_slice(&v.to_le_bytes());
            }
            w.write_bytes(9, &raw);
        }
        w
    }
}

impl ValueInfoProto {
    fn parse(bytes: &[u8], g: &mut LimitGuard) -> Result<Self, OnnxError> {
        g.enter()?;
        let mut info = ValueInfoProto::default();
        let mut r = Reader::new(bytes);
        while !r.is_at_end() {
            let (field, wt) = r.read_tag()?;
            match field {
                1 => info.name = g.read_string(&mut r, "value info name bytes")?,
                2 => info.dims = parse_type_proto(r.read_bytes()?, g)?,
                _ => r.skip(wt)?,
            }
        }
        g.exit();
        Ok(info)
    }

    fn to_writer(&self) -> Writer {
        let mut w = Writer::new();
        w.write_string(1, &self.name);

        // TypeProto { tensor_type = 1 } → Tensor { elem_type = 1, shape = 2 }
        // → TensorShapeProto { dim = 1 } → Dimension { dim_value = 1 }.
        let mut shape = Writer::new();
        for &d in &self.dims {
            let mut dim = Writer::new();
            dim.write_i64(1, d);
            shape.write_message(1, &dim);
        }
        let mut tensor_type = Writer::new();
        tensor_type.write_i64(1, DATA_TYPE_FLOAT);
        tensor_type.write_message(2, &shape);
        let mut type_proto = Writer::new();
        type_proto.write_message(1, &tensor_type);
        w.write_message(2, &type_proto);
        w
    }
}

/// Extracts static dims from a `TypeProto`.
fn parse_type_proto(bytes: &[u8], g: &mut LimitGuard) -> Result<Vec<i64>, OnnxError> {
    g.enter()?;
    let mut r = Reader::new(bytes);
    while !r.is_at_end() {
        let (field, wt) = r.read_tag()?;
        if field == 1 && wt == WireType::LengthDelimited {
            // TypeProto.Tensor
            g.enter()?;
            let mut tr = Reader::new(r.read_bytes()?);
            while !tr.is_at_end() {
                let (tf, twt) = tr.read_tag()?;
                if tf == 2 && twt == WireType::LengthDelimited {
                    // TensorShapeProto
                    g.enter()?;
                    let mut dims = Vec::new();
                    let mut sr = Reader::new(tr.read_bytes()?);
                    while !sr.is_at_end() {
                        let (sf, swt) = sr.read_tag()?;
                        if sf == 1 && swt == WireType::LengthDelimited {
                            // Dimension: dim_value = 1 varint, dim_param = 2 string.
                            g.check_count(
                                "shape dims",
                                dims.len() + 1,
                                g.limits.max_tensor_elements,
                            )?;
                            let mut dr = Reader::new(sr.read_bytes()?);
                            let mut value = 0i64;
                            while !dr.is_at_end() {
                                let (df, dwt) = dr.read_tag()?;
                                if df == 1 && dwt == WireType::Varint {
                                    value = dr.read_i64()?;
                                } else {
                                    dr.skip(dwt)?;
                                }
                            }
                            dims.push(value);
                        } else {
                            sr.skip(swt)?;
                        }
                    }
                    g.exit();
                    g.exit();
                    g.exit();
                    return Ok(dims);
                }
                tr.skip(twt)?;
            }
            g.exit();
        } else {
            r.skip(wt)?;
        }
    }
    g.exit();
    Ok(Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_tensor(bytes: &[u8]) -> Result<TensorProto, OnnxError> {
        let limits = ImportLimits::default();
        TensorProto::parse(bytes, &mut LimitGuard::new(&limits))
    }

    fn parse_value_info(bytes: &[u8]) -> Result<ValueInfoProto, OnnxError> {
        let limits = ImportLimits::default();
        ValueInfoProto::parse(bytes, &mut LimitGuard::new(&limits))
    }

    fn sample_model() -> ModelProto {
        ModelProto {
            ir_version: 7,
            producer_name: "orpheus".into(),
            opset_version: 11,
            graph: Some(GraphProto {
                name: "g".into(),
                nodes: vec![NodeProto {
                    name: "conv0".into(),
                    op_type: "Conv".into(),
                    inputs: vec!["x".into(), "w".into()],
                    outputs: vec!["y".into()],
                    attributes: vec![
                        AttributeProto {
                            name: "strides".into(),
                            ints: vec![2, 2],
                            ..AttributeProto::default()
                        },
                        AttributeProto {
                            name: "epsilon".into(),
                            f: Some(1e-5),
                            ..AttributeProto::default()
                        },
                        AttributeProto {
                            name: "auto_pad".into(),
                            s: Some("NOTSET".into()),
                            ..AttributeProto::default()
                        },
                    ],
                }],
                initializers: vec![
                    TensorProto {
                        name: "w".into(),
                        dims: vec![1, 1, 2, 2],
                        data_type: DATA_TYPE_FLOAT,
                        float_data: vec![0.5, -1.0, 2.0, 0.0],
                        int64_data: vec![],
                    },
                    TensorProto {
                        name: "shape".into(),
                        dims: vec![2],
                        data_type: DATA_TYPE_INT64,
                        float_data: vec![],
                        int64_data: vec![1, -1],
                    },
                ],
                inputs: vec![ValueInfoProto {
                    name: "x".into(),
                    dims: vec![1, 1, 4, 4],
                }],
                outputs: vec![ValueInfoProto {
                    name: "y".into(),
                    dims: vec![1, 1, 2, 2],
                }],
            }),
        }
    }

    #[test]
    fn model_round_trips() {
        let model = sample_model();
        let bytes = model.serialize();
        let back = ModelProto::parse(&bytes).unwrap();
        assert_eq!(back, model);
    }

    #[test]
    fn unknown_fields_are_skipped() {
        let mut w = Writer::new();
        w.write_i64(1, 7); // ir_version
        w.write_string(6, "doc string field onnx uses"); // unknown here
        w.write_i64(99, 42); // far-future field
        let model = ModelProto::parse(&w.into_bytes()).unwrap();
        assert_eq!(model.ir_version, 7);
    }

    #[test]
    fn raw_data_float_decodes() {
        let t = TensorProto {
            name: "w".into(),
            dims: vec![3],
            data_type: DATA_TYPE_FLOAT,
            float_data: vec![1.0, 2.5, -3.0],
            int64_data: vec![],
        };
        let bytes = t.to_writer().into_bytes();
        let back = parse_tensor(&bytes).unwrap();
        assert_eq!(back.float_data, vec![1.0, 2.5, -3.0]);
    }

    #[test]
    fn raw_data_int64_decodes() {
        let t = TensorProto {
            name: "shape".into(),
            dims: vec![2],
            data_type: DATA_TYPE_INT64,
            float_data: vec![],
            int64_data: vec![-1, 512],
        };
        let bytes = t.to_writer().into_bytes();
        let back = parse_tensor(&bytes).unwrap();
        assert_eq!(back.int64_data, vec![-1, 512]);
    }

    #[test]
    fn misaligned_raw_data_rejected() {
        let mut w = Writer::new();
        w.write_i64(2, DATA_TYPE_FLOAT);
        w.write_bytes(9, &[1, 2, 3]); // 3 bytes, not 4-aligned
        assert!(parse_tensor(&w.into_bytes()).is_err());
    }

    #[test]
    fn unsupported_raw_dtype_rejected() {
        let mut w = Writer::new();
        w.write_i64(2, 10); // FLOAT16
        w.write_bytes(9, &[0, 0]);
        assert!(matches!(
            parse_tensor(&w.into_bytes()),
            Err(OnnxError::Unsupported(_))
        ));
    }

    #[test]
    fn value_info_dims_round_trip() {
        let info = ValueInfoProto {
            name: "input".into(),
            dims: vec![1, 3, 299, 299],
        };
        let bytes = info.to_writer().into_bytes();
        let back = parse_value_info(&bytes).unwrap();
        assert_eq!(back, info);
    }

    #[test]
    fn garbage_bytes_error_not_panic() {
        assert!(ModelProto::parse(&[0xff, 0xff, 0xff]).is_err());
        assert!(ModelProto::parse(&[0x07]).is_err());
    }

    #[test]
    fn empty_model_parses() {
        let model = ModelProto::parse(&[]).unwrap();
        assert!(model.graph.is_none());
    }
}
