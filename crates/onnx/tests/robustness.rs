//! Robustness: the importer must never panic, whatever bytes arrive.
//! Models imported in the field come from other tools; a parser that panics
//! on malformed input is not deployable.

use orpheus_graph::{Graph, Node, OpKind, ValueInfo};
use orpheus_onnx::{export_model, import_model};
use proptest::prelude::*;

fn sample_model_bytes() -> Vec<u8> {
    let mut g = Graph::new("sample");
    g.add_input(ValueInfo::new("x", &[1, 2, 4, 4]));
    g.add_initializer("w", orpheus_tensor::Tensor::ones(&[3, 2, 3, 3]));
    g.add_node(Node::new("c", OpKind::Conv, &["x", "w"], &["y"]));
    g.add_node(Node::new("r", OpKind::Relu, &["y"], &["z"]));
    g.add_output("z");
    export_model(&g).expect("sample exports")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: errors, never panics.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = import_model(&bytes);
    }

    /// Truncations of a valid model: errors or parses, never panics.
    #[test]
    fn truncated_models_never_panic(cut in 0usize..10_000) {
        let bytes = sample_model_bytes();
        let cut = cut % (bytes.len() + 1);
        let _ = import_model(&bytes[..cut]);
    }

    /// Single-byte corruptions of a valid model: never panic, and when they
    /// parse, the graph still passes validation (import validates).
    #[test]
    fn bitflipped_models_never_panic(pos in 0usize..10_000, flip in 1u8..=255) {
        let mut bytes = sample_model_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        if let Ok(graph) = import_model(&bytes) {
            prop_assert!(graph.validate().is_ok());
        }
    }

    /// Appending garbage after a valid model: protobuf readers skip unknown
    /// trailing fields or error out; either way, no panic.
    #[test]
    fn trailing_garbage_never_panics(tail in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut bytes = sample_model_bytes();
        bytes.extend_from_slice(&tail);
        let _ = import_model(&bytes);
    }
}

#[test]
fn sample_model_round_trips_as_baseline() {
    let bytes = sample_model_bytes();
    let graph = import_model(&bytes).expect("uncorrupted model imports");
    assert_eq!(graph.nodes().len(), 2);
}
