//! Malformed-model fixture corpus.
//!
//! Each fixture in `tests/malformed/` is a small ONNX byte sequence broken
//! in one specific way; the tests pin the exact error variant the importer
//! must return for it. The wire-level fixtures are handcrafted bytes; the
//! graph-level ones are serialized through the crate's own proto types.
//!
//! Regenerate the corpus after changing the exporter or proto layer with:
//!
//! ```text
//! cargo test -p orpheus-onnx --test malformed regenerate_fixtures -- --ignored
//! ```

use orpheus_graph::GraphError;
use orpheus_onnx::proto::{
    GraphProto, ModelProto, NodeProto, TensorProto, ValueInfoProto, DATA_TYPE_FLOAT,
};
use orpheus_onnx::{import_model, OnnxError};

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/malformed")
        .join(name)
}

fn fixture(name: &str) -> Vec<u8> {
    std::fs::read(fixture_path(name))
        .unwrap_or_else(|e| panic!("fixture {name} missing ({e}); run regenerate_fixtures"))
}

/// A model whose last varint sets the continuation bit and then hits EOF.
fn truncated_varint() -> Vec<u8> {
    vec![0x08, 0xFF] // field 1 (ir_version), varint never terminates
}

/// A tag carrying protobuf wiretype 3 (start-group), which ONNX never uses.
fn bad_wiretype() -> Vec<u8> {
    vec![0x0B] // field 1, wiretype 3
}

/// A length-delimited graph field claiming ~4 GiB of payload in a 6-byte file.
fn huge_length_prefix() -> Vec<u8> {
    vec![0x3A, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F] // field 7 (graph), len = u32::MAX
}

fn wrap_graph(graph: GraphProto) -> Vec<u8> {
    // The exporter refuses to serialize invalid graphs, so the graph-level
    // fixtures are assembled straight from the proto types it would emit.
    ModelProto {
        ir_version: 7,
        producer_name: "malformed-corpus".into(),
        opset_version: 11,
        graph: Some(graph),
    }
    .serialize()
}

fn relu(name: &str, input: &str, output: &str) -> NodeProto {
    NodeProto {
        name: name.into(),
        op_type: "Relu".into(),
        inputs: vec![input.into()],
        outputs: vec![output.into()],
        attributes: vec![],
    }
}

/// Two nodes feeding each other: `a -> b -> a`.
fn cyclic_graph() -> Vec<u8> {
    wrap_graph(GraphProto {
        name: "cyclic".into(),
        nodes: vec![relu("a", "v2", "v1"), relu("b", "v1", "v2")],
        initializers: vec![],
        inputs: vec![ValueInfoProto {
            name: "x".into(),
            dims: vec![1, 4],
        }],
        outputs: vec![ValueInfoProto {
            name: "v1".into(),
            dims: vec![],
        }],
    })
}

/// A node consuming a value that no input, node, or initializer produces.
fn dangling_input() -> Vec<u8> {
    wrap_graph(GraphProto {
        name: "dangling".into(),
        nodes: vec![relu("r", "ghost", "y")],
        initializers: vec![],
        inputs: vec![ValueInfoProto {
            name: "x".into(),
            dims: vec![1, 4],
        }],
        outputs: vec![ValueInfoProto {
            name: "y".into(),
            dims: vec![],
        }],
    })
}

fn init_with_dims(dims: Vec<i64>) -> Vec<u8> {
    wrap_graph(GraphProto {
        name: "bad-init".into(),
        nodes: vec![],
        initializers: vec![TensorProto {
            name: "w".into(),
            dims,
            data_type: DATA_TYPE_FLOAT,
            float_data: vec![],
            int64_data: vec![],
        }],
        inputs: vec![],
        outputs: vec![],
    })
}

type Builder = fn() -> Vec<u8>;

const FIXTURES: [(&str, Builder); 7] = [
    ("truncated_varint.onnx", truncated_varint),
    ("bad_wiretype.onnx", bad_wiretype),
    ("huge_length_prefix.onnx", huge_length_prefix),
    ("cyclic_graph.onnx", cyclic_graph),
    ("dangling_input.onnx", dangling_input),
    ("zero_dim.onnx", || init_with_dims(vec![0, 3])),
    ("negative_dim.onnx", || init_with_dims(vec![-1, 3])),
];

#[test]
#[ignore = "writes into the source tree; run explicitly to refresh the corpus"]
fn regenerate_fixtures() {
    let dir = fixture_path("");
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    for (name, build) in FIXTURES {
        std::fs::write(fixture_path(name), build()).expect("write fixture");
    }
}

#[test]
fn fixtures_match_their_generators() {
    // The committed corpus must stay in sync with the builders above, so a
    // format change cannot silently turn the fixtures into stale no-ops.
    for (name, build) in FIXTURES {
        assert_eq!(fixture(name), build(), "{name} is stale; regenerate");
    }
}

#[test]
fn truncated_varint_is_a_wire_error() {
    assert!(matches!(
        import_model(&fixture("truncated_varint.onnx")),
        Err(OnnxError::Wire(_))
    ));
}

#[test]
fn bad_wiretype_is_a_wire_error() {
    assert!(matches!(
        import_model(&fixture("bad_wiretype.onnx")),
        Err(OnnxError::Wire(_))
    ));
}

#[test]
fn huge_length_prefix_is_a_wire_error_not_an_allocation() {
    // The length prefix claims ~4 GiB; a parser that trusted it would try to
    // allocate that much before discovering the truth.
    assert!(matches!(
        import_model(&fixture("huge_length_prefix.onnx")),
        Err(OnnxError::Wire(_))
    ));
}

#[test]
fn cyclic_graph_is_a_graph_cycle_error() {
    assert!(matches!(
        import_model(&fixture("cyclic_graph.onnx")),
        Err(OnnxError::Graph(GraphError::Cycle))
    ));
}

#[test]
fn dangling_input_is_a_missing_value_error() {
    match import_model(&fixture("dangling_input.onnx")) {
        Err(OnnxError::Graph(GraphError::MissingValue { value, .. })) => {
            assert_eq!(value, "ghost");
        }
        other => panic!("expected MissingValue, got {other:?}"),
    }
}

#[test]
fn zero_dim_initializer_is_a_model_error() {
    match import_model(&fixture("zero_dim.onnx")) {
        Err(OnnxError::Model(msg)) => assert!(msg.contains("non-positive dim"), "{msg}"),
        other => panic!("expected Model error, got {other:?}"),
    }
}

#[test]
fn negative_dim_initializer_is_a_model_error() {
    match import_model(&fixture("negative_dim.onnx")) {
        Err(OnnxError::Model(msg)) => assert!(msg.contains("non-positive dim"), "{msg}"),
        other => panic!("expected Model error, got {other:?}"),
    }
}
