//! Folds `BatchNormalization` into the preceding `Conv`.
//!
//! At inference time BN is an affine per-channel transform, so
//! `BN(Conv(x, W, b))` equals `Conv(x, W', b')` with
//! `W'[oc] = alpha[oc] * W[oc]` and `b' = alpha * b + beta`, where
//! `alpha = scale / sqrt(var + eps)` and `beta = shift - mean * alpha`.
//! This removes one full tensor traversal per conv — one of the headline
//! graph simplifications the paper's Figure 1 shows.

use orpheus_tensor::Tensor;

use crate::error::GraphError;
use crate::graph::{Graph, OpKind};
use crate::passes::Pass;

/// The conv+BN folding pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchNormFold;

impl Pass for BatchNormFold {
    fn name(&self) -> &str {
        "bn-fold"
    }

    fn run(&self, graph: &mut Graph) -> Result<bool, GraphError> {
        let mut changed = false;
        while let Some((conv_idx, bn_idx)) = find_foldable_pair(graph) {
            fold_pair(graph, conv_idx, bn_idx)?;
            changed = true;
        }
        Ok(changed)
    }
}

/// Finds a `Conv -> BN` pair where the conv output feeds only the BN and all
/// five BN parameters plus the conv weight are initializers.
fn find_foldable_pair(graph: &Graph) -> Option<(usize, usize)> {
    let producers = graph.producers();
    let consumers = graph.consumer_counts();
    for (bn_idx, bn) in graph.nodes().iter().enumerate() {
        if bn.op != OpKind::BatchNormalization || bn.inputs.len() < 5 {
            continue;
        }
        let conv_out = &bn.inputs[0];
        let Some(&conv_idx) = producers.get(conv_out.as_str()) else {
            continue;
        };
        let conv = &graph.nodes()[conv_idx];
        if conv.op != OpKind::Conv {
            continue;
        }
        if consumers.get(conv_out.as_str()).copied().unwrap_or(0) != 1 {
            continue;
        }
        let weight_ok = conv
            .inputs
            .get(1)
            .is_some_and(|w| graph.initializer(w).is_some());
        let bias_ok = match conv.inputs.get(2) {
            None => true,
            Some(b) if b.is_empty() => true,
            Some(b) => graph.initializer(b).is_some(),
        };
        let bn_params_ok = bn.inputs[1..5]
            .iter()
            .all(|p| graph.initializer(p).is_some());
        if weight_ok && bias_ok && bn_params_ok {
            return Some((conv_idx, bn_idx));
        }
    }
    None
}

fn fold_pair(graph: &mut Graph, conv_idx: usize, bn_idx: usize) -> Result<(), GraphError> {
    let bn = graph.nodes()[bn_idx].clone();
    let conv = graph.nodes()[conv_idx].clone();
    let perr = |reason: &str| GraphError::Pass {
        pass: "bn-fold".into(),
        reason: reason.into(),
    };

    let eps = bn.attrs.float_or("epsilon", 1e-5);
    let scale = graph
        .initializer(&bn.inputs[1])
        .ok_or_else(|| perr("missing scale"))?;
    let shift = graph
        .initializer(&bn.inputs[2])
        .ok_or_else(|| perr("missing shift"))?;
    let mean = graph
        .initializer(&bn.inputs[3])
        .ok_or_else(|| perr("missing mean"))?;
    let var = graph
        .initializer(&bn.inputs[4])
        .ok_or_else(|| perr("missing var"))?;
    let weight = graph
        .initializer(&conv.inputs[1])
        .ok_or_else(|| perr("missing weight"))?;

    let co = match weight.dims().first() {
        Some(&co) if co > 0 => co,
        _ => return Err(perr("conv weight has no output-channel dim")),
    };
    if scale.len() != co || shift.len() != co || mean.len() != co || var.len() != co {
        return Err(perr("BN parameter length != conv out_channels"));
    }
    let alpha: Vec<f32> = (0..co)
        .map(|c| scale.as_slice()[c] / (var.as_slice()[c] + eps).sqrt())
        .collect();
    let beta: Vec<f32> = (0..co)
        .map(|c| shift.as_slice()[c] - mean.as_slice()[c] * alpha[c])
        .collect();

    // Scale each output-channel slab of the weight.
    let per_oc = weight.len() / co;
    let mut new_weight = weight.clone();
    for (oc, a) in alpha.iter().enumerate() {
        for x in &mut new_weight.as_mut_slice()[oc * per_oc..(oc + 1) * per_oc] {
            *x *= a;
        }
    }
    // New bias = alpha * old_bias + beta.
    let old_bias: Vec<f32> = match conv.inputs.get(2).filter(|b| !b.is_empty()) {
        Some(b) => graph
            .initializer(b)
            .ok_or_else(|| perr("missing bias"))?
            .as_slice()
            .to_vec(),
        None => vec![0.0; co],
    };
    let new_bias: Vec<f32> = old_bias
        .iter()
        .zip(alpha.iter().zip(&beta))
        .map(|(&b, (&a, &be))| a * b + be)
        .collect();

    // Write folded tensors under fresh names so shared weights stay intact;
    // dead-code elimination reclaims the originals.
    let w_name = format!("{}__bnfold_w", conv.name);
    let b_name = format!("{}__bnfold_b", conv.name);
    let bias_tensor = Tensor::from_vec(new_bias, &[co])
        .map_err(|_| perr("folded bias length != out_channels"))?;
    graph.add_initializer(&w_name, new_weight);
    graph.add_initializer(&b_name, bias_tensor);

    // The conv now produces the BN's output directly.
    let bn_out = bn
        .outputs
        .first()
        .ok_or_else(|| perr("BN node has no outputs"))?
        .clone();
    {
        let node = &mut graph.nodes_mut()[conv_idx];
        node.inputs.truncate(1);
        node.inputs.push(w_name);
        node.inputs.push(b_name);
        node.outputs[0] = bn_out;
    }
    graph.nodes_mut().remove(bn_idx);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{AttrValue, Attributes};
    use crate::graph::{Node, ValueInfo};

    fn conv_bn_graph(with_bias: bool, extra_consumer: bool) -> Graph {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1, 1, 4, 4]));
        g.add_initializer("w", Tensor::full(&[2, 1, 1, 1], 3.0));
        let mut conv_inputs = vec!["x", "w"];
        if with_bias {
            g.add_initializer("b", Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
            conv_inputs.push("b");
        }
        g.add_node(Node::new("conv", OpKind::Conv, &conv_inputs, &["c"]));
        g.add_initializer("scale", Tensor::full(&[2], 2.0));
        g.add_initializer("shift", Tensor::full(&[2], 10.0));
        g.add_initializer("mean", Tensor::full(&[2], 0.0));
        g.add_initializer("var", Tensor::full(&[2], 1.0));
        g.add_node(
            Node::new(
                "bn",
                OpKind::BatchNormalization,
                &["c", "scale", "shift", "mean", "var"],
                &["y"],
            )
            .with_attrs(Attributes::new().with("epsilon", AttrValue::Float(0.0))),
        );
        if extra_consumer {
            g.add_node(Node::new("extra", OpKind::Relu, &["c"], &["e"]));
            g.add_output("e");
        }
        g.add_output("y");
        g
    }

    #[test]
    fn folds_conv_bn_without_bias() {
        let mut g = conv_bn_graph(false, false);
        assert!(BatchNormFold.run(&mut g).unwrap());
        assert_eq!(g.nodes().len(), 1);
        let conv = &g.nodes()[0];
        assert_eq!(conv.outputs[0], "y");
        // alpha = 2/sqrt(1) = 2 → weight 3*2 = 6; bias = 10.
        let w = g.initializer(&conv.inputs[1]).unwrap();
        assert!((w.as_slice()[0] - 6.0).abs() < 1e-5);
        let b = g.initializer(&conv.inputs[2]).unwrap();
        assert!((b.as_slice()[0] - 10.0).abs() < 1e-5);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn folds_conv_bn_with_bias() {
        let mut g = conv_bn_graph(true, false);
        assert!(BatchNormFold.run(&mut g).unwrap());
        let conv = &g.nodes()[0];
        let b = g.initializer(&conv.inputs[2]).unwrap();
        // bias' = alpha*b + beta = 2*1 + 10 = 12 (channel 0), 2*2 + 10 = 14.
        assert!((b.as_slice()[0] - 12.0).abs() < 1e-5);
        assert!((b.as_slice()[1] - 14.0).abs() < 1e-5);
    }

    #[test]
    fn skips_when_conv_output_shared() {
        let mut g = conv_bn_graph(false, true);
        assert!(!BatchNormFold.run(&mut g).unwrap());
        assert_eq!(g.nodes().len(), 3);
    }

    #[test]
    fn rank0_weight_errors_instead_of_panicking() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1, 1, 4, 4]));
        g.add_initializer("w", Tensor::scalar(3.0)); // rank 0: no out-channel dim
        g.add_node(Node::new("conv", OpKind::Conv, &["x", "w"], &["c"]));
        for p in ["scale", "shift", "mean", "var"] {
            g.add_initializer(p, Tensor::ones(&[2]));
        }
        g.add_node(Node::new(
            "bn",
            OpKind::BatchNormalization,
            &["c", "scale", "shift", "mean", "var"],
            &["y"],
        ));
        g.add_output("y");
        assert!(matches!(
            BatchNormFold.run(&mut g),
            Err(GraphError::Pass { .. })
        ));
    }

    #[test]
    fn skips_bn_without_conv_producer() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1, 2, 2, 2]));
        for p in ["scale", "shift", "mean", "var"] {
            g.add_initializer(p, Tensor::ones(&[2]));
        }
        g.add_node(Node::new(
            "bn",
            OpKind::BatchNormalization,
            &["x", "scale", "shift", "mean", "var"],
            &["y"],
        ));
        g.add_output("y");
        assert!(!BatchNormFold.run(&mut g).unwrap());
    }
}
