//! Removes nodes and initializers that cannot affect any graph output.

use std::collections::HashSet;

use crate::error::GraphError;
use crate::graph::Graph;
use crate::passes::Pass;

/// Dead-node and dead-initializer elimination.
///
/// Walks backwards from the graph outputs, keeping only nodes whose outputs
/// are (transitively) needed, then drops initializers no surviving node
/// reads.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadCodeElim;

impl Pass for DeadCodeElim {
    fn name(&self) -> &str {
        "dead-code-elim"
    }

    fn run(&self, graph: &mut Graph) -> Result<bool, GraphError> {
        // Mark live values backwards from the outputs.
        let producers = graph.producers();
        let mut live_nodes: HashSet<usize> = HashSet::new();
        let mut stack: Vec<&str> = graph.outputs().iter().map(String::as_str).collect();
        let mut seen_values: HashSet<&str> = stack.iter().copied().collect();
        while let Some(value) = stack.pop() {
            if let Some(&idx) = producers.get(value) {
                if live_nodes.insert(idx) {
                    for input in &graph.nodes()[idx].inputs {
                        if seen_values.insert(input.as_str()) {
                            stack.push(input.as_str());
                        }
                    }
                }
            }
        }
        let live_values: HashSet<String> = seen_values.iter().map(|s| s.to_string()).collect();
        let live_nodes: HashSet<usize> = live_nodes;

        let before_nodes = graph.nodes().len();
        let mut idx = 0usize;
        graph.nodes_mut().retain(|_| {
            let keep = live_nodes.contains(&idx);
            idx += 1;
            keep
        });

        let before_inits = graph.initializers().len();
        graph
            .initializers_mut()
            .retain(|name, _| live_values.contains(name));

        Ok(graph.nodes().len() != before_nodes || graph.initializers().len() != before_inits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Node, OpKind, ValueInfo};
    use orpheus_tensor::Tensor;

    #[test]
    fn removes_unreachable_node_and_initializer() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1]));
        g.add_initializer("w_dead", Tensor::ones(&[4]));
        g.add_node(Node::new("live", OpKind::Relu, &["x"], &["y"]));
        g.add_node(Node::new("dead", OpKind::Sigmoid, &["w_dead"], &["unused"]));
        g.add_output("y");
        assert!(DeadCodeElim.run(&mut g).unwrap());
        assert_eq!(g.nodes().len(), 1);
        assert_eq!(g.nodes()[0].name, "live");
        assert!(g.initializer("w_dead").is_none());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn keeps_everything_reachable() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1, 2]));
        g.add_initializer("w", Tensor::ones(&[2, 2]));
        g.add_node(Node::new("fc", OpKind::Gemm, &["x", "w"], &["y"]));
        g.add_output("y");
        assert!(!DeadCodeElim.run(&mut g).unwrap());
        assert_eq!(g.nodes().len(), 1);
        assert!(g.initializer("w").is_some());
    }

    #[test]
    fn keeps_diamond_dependencies() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1, 4]));
        g.add_node(Node::new("a", OpKind::Relu, &["x"], &["l"]));
        g.add_node(Node::new("b", OpKind::Sigmoid, &["x"], &["r"]));
        g.add_node(Node::new("join", OpKind::Add, &["l", "r"], &["y"]));
        g.add_output("y");
        assert!(!DeadCodeElim.run(&mut g).unwrap());
        assert_eq!(g.nodes().len(), 3);
    }
}
