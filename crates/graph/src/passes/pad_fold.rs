//! Folds a zero `Pad` into the following `Conv`.
//!
//! Exporters frequently emit `Pad → Conv(pads=0)` instead of a padded
//! convolution. Since the convolution operator supports symmetric spatial
//! padding natively, a constant zero pad over the spatial dims only can be
//! absorbed, eliminating a full tensor copy.

use crate::error::GraphError;
use crate::graph::{Graph, OpKind};
use crate::passes::Pass;
use crate::AttrValue;

/// The Pad→Conv folding pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct PadFold;

impl Pass for PadFold {
    fn name(&self) -> &str {
        "pad-fold"
    }

    fn run(&self, graph: &mut Graph) -> Result<bool, GraphError> {
        let perr = |reason: &str| GraphError::Pass {
            pass: "pad-fold".into(),
            reason: reason.into(),
        };
        let mut changed = false;
        while let Some((pad_idx, conv_idx)) = find_foldable_pair(graph) {
            let pad = graph.nodes()[pad_idx].clone();
            let pads = pad.attrs.ints_or("pads", &[]);
            // [n_b, c_b, h_b, w_b, n_e, c_e, h_e, w_e]; symmetric spatial
            // guaranteed by find_foldable_pair.
            let (extra_h, extra_w) = (pads[2], pads[3]);
            let pad_in = pad
                .inputs
                .first()
                .ok_or_else(|| perr("Pad node has no input"))?
                .clone();
            {
                let conv = &mut graph.nodes_mut()[conv_idx];
                let mut conv_pads = conv.attrs.ints_or("pads", &[0, 0, 0, 0]);
                if conv_pads.len() != 4 {
                    conv_pads = vec![0, 0, 0, 0];
                }
                // Attribute values are untrusted; combined pads must stay
                // within i64 or the fold is invalid.
                let combine = |base: usize, extra: usize| -> Result<i64, GraphError> {
                    base.checked_add(extra)
                        .and_then(|v| i64::try_from(v).ok())
                        .ok_or_else(|| perr("combined pads overflow"))
                };
                let new_pads: Vec<i64> = vec![
                    combine(conv_pads[0], extra_h)?,
                    combine(conv_pads[1], extra_w)?,
                    combine(conv_pads[2], extra_h)?,
                    combine(conv_pads[3], extra_w)?,
                ];
                conv.attrs.set("pads", AttrValue::Ints(new_pads));
                conv.inputs[0] = pad_in;
            }
            graph.nodes_mut().remove(pad_idx);
            changed = true;
        }
        Ok(changed)
    }
}

/// Finds `Pad → Conv` where the pad is constant zero, rank-4, spatially
/// symmetric, touches only H/W, and feeds exactly the conv.
fn find_foldable_pair(graph: &Graph) -> Option<(usize, usize)> {
    let producers = graph.producers();
    let consumers = graph.consumer_counts();
    for (conv_idx, conv) in graph.nodes().iter().enumerate() {
        if conv.op != OpKind::Conv {
            continue;
        }
        // A conv with no inputs is malformed but must not abort the whole
        // search (`?` here would skip every later candidate).
        let Some(conv_in) = conv.inputs.first() else {
            continue;
        };
        let Some(&pad_idx) = producers.get(conv_in.as_str()) else {
            continue;
        };
        let pad = &graph.nodes()[pad_idx];
        if pad.op != OpKind::Pad {
            continue;
        }
        if consumers.get(conv_in.as_str()).copied().unwrap_or(0) != 1 {
            continue;
        }
        if pad.attrs.str_opt("mode").is_some_and(|m| m != "constant") {
            continue;
        }
        if pad.attrs.float_or("value", 0.0) != 0.0 {
            continue;
        }
        let pads = pad.attrs.ints_or("pads", &[]);
        let rank4_spatial_symmetric = pads.len() == 8
            && pads[0] == 0
            && pads[1] == 0
            && pads[4] == 0
            && pads[5] == 0
            && pads[2] == pads[6]
            && pads[3] == pads[7];
        if rank4_spatial_symmetric {
            return Some((pad_idx, conv_idx));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Node, ValueInfo};
    use crate::Attributes;
    use orpheus_tensor::Tensor;

    fn pad_conv_graph(pads: Vec<i64>, value: f32) -> Graph {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1, 2, 4, 4]));
        g.add_initializer("w", Tensor::ones(&[3, 2, 3, 3]));
        g.add_node(
            Node::new("pad", OpKind::Pad, &["x"], &["p"]).with_attrs(
                Attributes::new()
                    .with("pads", AttrValue::Ints(pads))
                    .with("value", AttrValue::Float(value)),
            ),
        );
        g.add_node(
            Node::new("conv", OpKind::Conv, &["p", "w"], &["y"])
                .with_attrs(Attributes::new().with("pads", AttrValue::Ints(vec![0, 0, 0, 0]))),
        );
        g.add_output("y");
        g
    }

    #[test]
    fn folds_spatial_zero_pad() {
        let mut g = pad_conv_graph(vec![0, 0, 1, 1, 0, 0, 1, 1], 0.0);
        assert!(PadFold.run(&mut g).unwrap());
        assert_eq!(g.nodes().len(), 1);
        let conv = &g.nodes()[0];
        assert_eq!(conv.inputs[0], "x");
        assert_eq!(conv.attrs.ints_or("pads", &[]), vec![1, 1, 1, 1]);
        assert!(g.validate().is_ok());
        // Output shape matches what Pad+Conv produced: 4+2-3+1 = 4.
        let shapes = crate::infer_shapes(&g).unwrap();
        assert_eq!(shapes["y"], vec![1, 3, 4, 4]);
    }

    #[test]
    fn skips_nonzero_fill() {
        let mut g = pad_conv_graph(vec![0, 0, 1, 1, 0, 0, 1, 1], 5.0);
        assert!(!PadFold.run(&mut g).unwrap());
        assert_eq!(g.nodes().len(), 2);
    }

    #[test]
    fn skips_channel_padding() {
        let mut g = pad_conv_graph(vec![0, 1, 1, 1, 0, 1, 1, 1], 0.0);
        assert!(!PadFold.run(&mut g).unwrap());
    }

    #[test]
    fn skips_asymmetric_spatial_padding() {
        let mut g = pad_conv_graph(vec![0, 0, 1, 0, 0, 0, 0, 1], 0.0);
        assert!(!PadFold.run(&mut g).unwrap());
    }

    #[test]
    fn inputless_conv_does_not_abort_the_search() {
        // Regression: `conv.inputs.first()?` used to return None from the
        // whole search when ANY conv lacked inputs, skipping later pairs.
        let mut g = pad_conv_graph(vec![0, 0, 1, 1, 0, 0, 1, 1], 0.0);
        g.nodes_mut()
            .insert(0, Node::new("broken", OpKind::Conv, &[], &["z"]));
        assert!(PadFold.run(&mut g).unwrap());
        assert_eq!(g.nodes().len(), 2, "pad folded despite the broken conv");
    }

    #[test]
    fn huge_pads_error_instead_of_overflowing() {
        let big = i64::MAX;
        let mut g = pad_conv_graph(vec![0, 0, big, big, 0, 0, big, big], 0.0);
        // Give the conv near-max pads so the combined value overflows i64.
        g.nodes_mut()[1]
            .attrs
            .set("pads", AttrValue::Ints(vec![big, big, big, big]));
        assert!(matches!(PadFold.run(&mut g), Err(GraphError::Pass { .. })));
    }

    #[test]
    fn skips_shared_pad_output() {
        let mut g = pad_conv_graph(vec![0, 0, 1, 1, 0, 0, 1, 1], 0.0);
        g.add_node(Node::new("extra", OpKind::Relu, &["p"], &["e"]));
        g.add_output("e");
        assert!(!PadFold.run(&mut g).unwrap());
    }
}
