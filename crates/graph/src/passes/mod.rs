//! Graph simplification passes.
//!
//! Each pass is a small rewrite that returns whether it changed the graph;
//! the [`PassManager`] runs its pipeline to a fixpoint. The standard pipeline
//! is what `orpheus::Engine::load` applies to every imported model, and the
//! `graph_simplify` ablation bench measures its end-to-end effect.

mod bn_fold;
mod constant_fold;
mod dead_code;
mod fuse_activation;
mod identity_elim;
mod pad_fold;

pub use bn_fold::BatchNormFold;
pub use constant_fold::ConstantFold;
pub use dead_code::DeadCodeElim;
pub use fuse_activation::FuseActivation;
pub use identity_elim::IdentityElim;
pub use pad_fold::PadFold;

use crate::error::GraphError;
use crate::graph::Graph;

/// A graph-to-graph rewrite.
pub trait Pass {
    /// Stable pass name (used in logs and error messages).
    fn name(&self) -> &str;

    /// Applies the rewrite.
    ///
    /// Returns `true` if the graph changed.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Pass`] when the graph violates an invariant the
    /// pass depends on.
    fn run(&self, graph: &mut Graph) -> Result<bool, GraphError>;
}

/// A point in a [`PassManager::run_to_fixpoint`] pipeline at which the
/// installed [`PipelineCheck`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineEvent<'a> {
    /// Before the first pass runs (checks the pipeline's input graph and
    /// lets a stateful check snapshot a baseline).
    PipelineStart,
    /// Immediately after one application of the named pass.
    AfterPass(&'a str),
}

/// A post-pass invariant check (see `orpheus-verify::install_sanitizer`).
///
/// Returning `Err` aborts the pipeline; [`PassManager::run_to_fixpoint`]
/// wraps the message in a [`GraphError::Pass`] naming the pass that ran
/// last, so a broken rewrite is attributed to its author instead of
/// surfacing as a wrong answer or panic layers later.
pub type PipelineCheck = Box<dyn Fn(&Graph, PipelineEvent<'_>) -> Result<(), String>>;

/// Runs a pipeline of passes to a fixpoint.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    check: Option<PipelineCheck>,
}

impl std::fmt::Debug for PassManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.passes.iter().map(|p| p.name()).collect();
        f.debug_struct("PassManager")
            .field("passes", &names)
            .field("checked", &self.check.is_some())
            .finish()
    }
}

impl PassManager {
    /// An empty pipeline.
    pub fn new() -> Self {
        PassManager::default()
    }

    /// The standard Orpheus simplification pipeline.
    pub fn standard() -> Self {
        let mut pm = PassManager::new();
        pm.add(IdentityElim);
        pm.add(ConstantFold);
        pm.add(PadFold);
        pm.add(BatchNormFold);
        pm.add(FuseActivation);
        pm.add(DeadCodeElim);
        pm
    }

    /// Appends a pass to the pipeline.
    pub fn add<P: Pass + 'static>(&mut self, pass: P) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Pass names, in pipeline order.
    pub fn pass_names(&self) -> Vec<&str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Installs a [`PipelineCheck`] that runs at pipeline start and after
    /// every pass application (the sanitizer mode `orpheus-verify`
    /// provides). Replaces any previously installed check.
    pub fn set_pipeline_check(&mut self, check: PipelineCheck) {
        self.check = Some(check);
    }

    /// Whether a pipeline check is installed.
    pub fn has_pipeline_check(&self) -> bool {
        self.check.is_some()
    }

    fn run_check(&self, graph: &Graph, event: PipelineEvent<'_>) -> Result<(), GraphError> {
        let Some(check) = &self.check else {
            return Ok(());
        };
        check(graph, event).map_err(|reason| GraphError::Pass {
            pass: match event {
                PipelineEvent::PipelineStart => "pipeline-input".to_string(),
                PipelineEvent::AfterPass(name) => name.to_string(),
            },
            reason,
        })
    }

    /// Runs the pipeline until no pass reports a change (bounded at 10
    /// rounds, far above what any real model needs).
    ///
    /// Returns the total number of pass applications that changed the graph.
    ///
    /// When tracing is enabled (see `orpheus-observe`), each pass execution
    /// is recorded as a span under a "simplify" parent, and every application
    /// that changed the graph bumps a `graph.pass.<name>.rewrites` counter.
    ///
    /// # Errors
    ///
    /// Propagates the first pass failure. When a [`PipelineCheck`] is
    /// installed it runs on the input graph and after every pass
    /// application; a check failure aborts the pipeline as a
    /// [`GraphError::Pass`] naming the pass that introduced the violation
    /// (or `"pipeline-input"` when the input graph was already bad).
    pub fn run_to_fixpoint(&self, graph: &mut Graph) -> Result<usize, GraphError> {
        let mut simplify_span = orpheus_observe::span("simplify", "pass");
        self.run_check(graph, PipelineEvent::PipelineStart)?;
        let mut total_changes = 0;
        for round in 0..10 {
            let mut changed = false;
            for pass in &self.passes {
                let mut pass_span = orpheus_observe::span(pass.name(), "pass");
                pass_span.attr("round", round as u64);
                let pass_changed = pass.run(graph)?;
                pass_span.attr("changed", pass_changed as u64);
                self.run_check(graph, PipelineEvent::AfterPass(pass.name()))?;
                if pass_changed {
                    if orpheus_observe::enabled() {
                        orpheus_observe::counter_add(
                            &format!("graph.pass.{}.rewrites", pass.name()),
                            1,
                        );
                    }
                    changed = true;
                    total_changes += 1;
                }
            }
            if !changed {
                break;
            }
        }
        simplify_span.attr("total_changes", total_changes as u64);
        Ok(total_changes)
    }
}

/// Rewires every consumer (and graph output) of `from` to read `to`.
pub(crate) fn replace_value(graph: &mut Graph, from: &str, to: &str) {
    for node in graph.nodes_mut() {
        for input in &mut node.inputs {
            if input == from {
                *input = to.to_string();
            }
        }
    }
    // Graph outputs are names; rewire them too via the render path.
    let outputs: Vec<String> = graph.outputs().to_vec();
    if outputs.iter().any(|o| o == from) {
        let new_outputs: Vec<String> = outputs
            .into_iter()
            .map(|o| if o == from { to.to_string() } else { o })
            .collect();
        graph.set_outputs(new_outputs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Node, OpKind, ValueInfo};

    struct NoopPass;
    impl Pass for NoopPass {
        fn name(&self) -> &str {
            "noop"
        }
        fn run(&self, _graph: &mut Graph) -> Result<bool, GraphError> {
            Ok(false)
        }
    }

    #[test]
    fn fixpoint_terminates_immediately_for_noop() {
        let mut g = Graph::new("t");
        let mut pm = PassManager::new();
        pm.add(NoopPass);
        assert_eq!(pm.run_to_fixpoint(&mut g).unwrap(), 0);
    }

    #[test]
    fn standard_pipeline_lists_all_passes() {
        let pm = PassManager::standard();
        let names = pm.pass_names();
        assert!(names.contains(&"identity-elim"));
        assert!(names.contains(&"bn-fold"));
        assert!(names.contains(&"pad-fold"));
        assert!(names.contains(&"fuse-activation"));
        assert!(names.contains(&"constant-fold"));
        assert!(names.contains(&"dead-code-elim"));
    }

    /// A pass that deliberately corrupts the graph: it rewires the first
    /// node to read a value nothing produces.
    struct BreakingPass;
    impl Pass for BreakingPass {
        fn name(&self) -> &str {
            "breaker"
        }
        fn run(&self, graph: &mut Graph) -> Result<bool, GraphError> {
            if let Some(node) = graph.nodes_mut().first_mut() {
                node.inputs = vec!["__ghost__".to_string()];
            }
            Ok(true)
        }
    }

    fn relu_graph() -> Graph {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1]));
        g.add_node(Node::new("a", OpKind::Relu, &["x"], &["y"]));
        g.add_output("y");
        g
    }

    #[test]
    fn pipeline_check_attributes_failure_to_the_breaking_pass() {
        let mut pm = PassManager::new();
        pm.add(NoopPass);
        pm.add(BreakingPass);
        pm.set_pipeline_check(Box::new(|graph, _event| {
            graph.validate().map_err(|e| e.to_string())
        }));
        assert!(pm.has_pipeline_check());
        let err = pm.run_to_fixpoint(&mut relu_graph()).unwrap_err();
        assert!(
            matches!(&err, GraphError::Pass { pass, .. } if pass == "breaker"),
            "wrong attribution: {err}"
        );
    }

    #[test]
    fn pipeline_check_flags_bad_input_graph_before_any_pass() {
        let mut g = relu_graph();
        g.add_output("never-produced");
        let mut pm = PassManager::new();
        pm.add(NoopPass);
        pm.set_pipeline_check(Box::new(|graph, _event| {
            graph.validate().map_err(|e| e.to_string())
        }));
        let err = pm.run_to_fixpoint(&mut g).unwrap_err();
        assert!(
            matches!(&err, GraphError::Pass { pass, .. } if pass == "pipeline-input"),
            "wrong attribution: {err}"
        );
    }

    #[test]
    fn pipeline_check_passes_clean_pipelines_through() {
        let mut pm = PassManager::standard();
        pm.set_pipeline_check(Box::new(|graph, _event| {
            graph.validate().map_err(|e| e.to_string())
        }));
        let mut g = relu_graph();
        assert!(pm.run_to_fixpoint(&mut g).is_ok());
    }

    #[test]
    fn replace_value_rewires_consumers_and_outputs() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1]));
        g.add_node(Node::new("a", OpKind::Relu, &["x"], &["y"]));
        g.add_node(Node::new("b", OpKind::Relu, &["y"], &["z"]));
        g.add_output("y");
        replace_value(&mut g, "y", "x");
        assert_eq!(g.nodes()[1].inputs[0], "x");
        assert_eq!(g.outputs()[0], "x");
    }
}
