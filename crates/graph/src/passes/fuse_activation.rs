//! Fuses an activation node into the producing `Conv`/`Gemm`/`Add`.
//!
//! The executor applies the fused activation during output write-back,
//! saving one full tensor traversal per layer. The fusion is recorded as
//! attributes on the producer:
//!
//! * `fused_activation`: `"relu" | "leaky_relu" | "clip" | "sigmoid" | "tanh"`
//! * `fused_clip_lo` / `fused_clip_hi`: bounds for `clip`
//! * `fused_alpha`: slope for `leaky_relu`

use crate::attributes::AttrValue;
use crate::error::GraphError;
use crate::graph::{Graph, OpKind};
use crate::passes::Pass;

/// The activation-fusion pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct FuseActivation;

impl Pass for FuseActivation {
    fn name(&self) -> &str {
        "fuse-activation"
    }

    fn run(&self, graph: &mut Graph) -> Result<bool, GraphError> {
        let mut changed = false;
        while let Some((prod_idx, act_idx)) = find_fusable_pair(graph) {
            let act = graph.nodes()[act_idx].clone();
            let act_out = act.outputs[0].clone();
            let prod_out = graph.nodes()[prod_idx].outputs[0].clone();
            {
                let prod = &mut graph.nodes_mut()[prod_idx];
                match act.op {
                    OpKind::Relu => prod
                        .attrs
                        .set("fused_activation", AttrValue::Str("relu".into())),
                    OpKind::Clip => {
                        prod.attrs
                            .set("fused_activation", AttrValue::Str("clip".into()));
                        prod.attrs.set(
                            "fused_clip_lo",
                            AttrValue::Float(act.attrs.float_or("min", f32::NEG_INFINITY)),
                        );
                        prod.attrs.set(
                            "fused_clip_hi",
                            AttrValue::Float(act.attrs.float_or("max", f32::INFINITY)),
                        );
                    }
                    OpKind::LeakyRelu => {
                        prod.attrs
                            .set("fused_activation", AttrValue::Str("leaky_relu".into()));
                        prod.attrs.set(
                            "fused_alpha",
                            AttrValue::Float(act.attrs.float_or("alpha", 0.01)),
                        );
                    }
                    OpKind::Sigmoid => prod
                        .attrs
                        .set("fused_activation", AttrValue::Str("sigmoid".into())),
                    OpKind::Tanh => prod
                        .attrs
                        .set("fused_activation", AttrValue::Str("tanh".into())),
                    _ => unreachable!("find_fusable_pair only returns activations"),
                }
            }
            graph.nodes_mut().remove(act_idx);
            // The producer now emits the activation's output name. By the
            // single-consumer precondition nothing else read the old name.
            let prod_idx = if act_idx < prod_idx {
                prod_idx - 1
            } else {
                prod_idx
            };
            graph.nodes_mut()[prod_idx].outputs[0] = act_out;
            debug_assert!(!graph.nodes().iter().any(|n| n.inputs.contains(&prod_out)));
            changed = true;
        }
        Ok(changed)
    }
}

/// Finds `producer -> activation` where the producer is fusable, not already
/// fused, and its output has exactly one consumer.
fn find_fusable_pair(graph: &Graph) -> Option<(usize, usize)> {
    let producers = graph.producers();
    let consumers = graph.consumer_counts();
    for (act_idx, act) in graph.nodes().iter().enumerate() {
        if !matches!(
            act.op,
            OpKind::Relu | OpKind::Clip | OpKind::LeakyRelu | OpKind::Sigmoid | OpKind::Tanh
        ) {
            continue;
        }
        let Some(input) = act.inputs.first() else {
            continue;
        };
        let Some(&prod_idx) = producers.get(input.as_str()) else {
            continue;
        };
        let prod = &graph.nodes()[prod_idx];
        if !matches!(prod.op, OpKind::Conv | OpKind::Gemm | OpKind::Add) {
            continue;
        }
        if prod.attrs.get("fused_activation").is_some() {
            continue;
        }
        if consumers.get(input.as_str()).copied().unwrap_or(0) != 1 {
            continue;
        }
        return Some((prod_idx, act_idx));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Attributes;
    use crate::graph::{Node, ValueInfo};
    use orpheus_tensor::Tensor;

    fn conv_relu() -> Graph {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1, 1, 4, 4]));
        g.add_initializer("w", Tensor::ones(&[1, 1, 1, 1]));
        g.add_node(Node::new("conv", OpKind::Conv, &["x", "w"], &["c"]));
        g.add_node(Node::new("relu", OpKind::Relu, &["c"], &["y"]));
        g.add_output("y");
        g
    }

    #[test]
    fn fuses_conv_relu() {
        let mut g = conv_relu();
        assert!(FuseActivation.run(&mut g).unwrap());
        assert_eq!(g.nodes().len(), 1);
        let conv = &g.nodes()[0];
        assert_eq!(conv.attrs.str_opt("fused_activation"), Some("relu"));
        assert_eq!(conv.outputs[0], "y");
        assert!(g.validate().is_ok());
    }

    #[test]
    fn fuses_clip_with_bounds() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1, 1, 2, 2]));
        g.add_initializer("w", Tensor::ones(&[1, 1, 1, 1]));
        g.add_node(Node::new("conv", OpKind::Conv, &["x", "w"], &["c"]));
        g.add_node(
            Node::new("clip", OpKind::Clip, &["c"], &["y"]).with_attrs(
                Attributes::new()
                    .with("min", AttrValue::Float(0.0))
                    .with("max", AttrValue::Float(6.0)),
            ),
        );
        g.add_output("y");
        assert!(FuseActivation.run(&mut g).unwrap());
        let conv = &g.nodes()[0];
        assert_eq!(conv.attrs.str_opt("fused_activation"), Some("clip"));
        assert_eq!(conv.attrs.float_or("fused_clip_hi", 0.0), 6.0);
    }

    #[test]
    fn fuses_add_relu_residual_join() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("a", &[1, 4]));
        g.add_input(ValueInfo::new("b", &[1, 4]));
        g.add_node(Node::new("add", OpKind::Add, &["a", "b"], &["s"]));
        g.add_node(Node::new("relu", OpKind::Relu, &["s"], &["y"]));
        g.add_output("y");
        assert!(FuseActivation.run(&mut g).unwrap());
        assert_eq!(g.nodes().len(), 1);
        assert_eq!(g.nodes()[0].attrs.str_opt("fused_activation"), Some("relu"));
    }

    #[test]
    fn skips_shared_intermediate() {
        let mut g = conv_relu();
        // A second consumer of the conv output blocks fusion.
        g.add_node(Node::new("extra", OpKind::Sigmoid, &["c"], &["e"]));
        g.add_output("e");
        assert!(!FuseActivation.run(&mut g).unwrap());
    }

    #[test]
    fn does_not_double_fuse() {
        let mut g = conv_relu();
        // conv -> relu -> relu: second relu must not fuse into the
        // already-fused conv.
        g.nodes_mut()
            .push(Node::new("relu2", OpKind::Relu, &["y"], &["z"]));
        g.set_outputs(vec!["z".into()]);
        assert!(FuseActivation.run(&mut g).unwrap());
        // conv fused with the first relu; the second remains because the
        // conv already carries a fused activation.
        assert_eq!(g.nodes().len(), 2, "unexpected fusion: {}", g.render());
        assert_eq!(g.nodes()[1].op, OpKind::Relu);
        assert!(g.validate().is_ok());
    }
}
