//! Folds shape-only operators applied to constants.
//!
//! `Flatten`, `Reshape`, and `Identity` nodes whose input is an initializer
//! are evaluated at simplification time: the reshaped tensor becomes a new
//! initializer and the node disappears. This shows up in practice when a
//! training framework exports a classifier weight through a `Reshape`.

use crate::attributes::AttrValue;
use crate::error::GraphError;
use crate::graph::{Graph, OpKind};
use crate::passes::{replace_value, Pass};

/// The constant-folding pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstantFold;

impl Pass for ConstantFold {
    fn name(&self) -> &str {
        "constant-fold"
    }

    fn run(&self, graph: &mut Graph) -> Result<bool, GraphError> {
        let mut changed = false;
        loop {
            let target = graph.nodes().iter().position(|n| {
                matches!(n.op, OpKind::Flatten | OpKind::Reshape | OpKind::Identity)
                    && n.inputs
                        .first()
                        .is_some_and(|i| graph.initializer(i).is_some())
            });
            let Some(idx) = target else { break };
            let node = graph.nodes()[idx].clone();
            let src = graph
                .initializer(&node.inputs[0])
                .expect("checked above")
                .clone();
            let folded = match node.op {
                OpKind::Identity => src,
                OpKind::Flatten => {
                    let axis = node.attrs.int_or("axis", 1).max(0) as usize;
                    let dims = src.dims();
                    let axis = axis.min(dims.len());
                    let lead: usize = dims[..axis].iter().product();
                    let trail: usize = dims[axis..].iter().product();
                    src.reshaped(&[lead.max(1), trail.max(1)])
                        .map_err(|e| GraphError::Pass {
                            pass: "constant-fold".into(),
                            reason: e.to_string(),
                        })?
                }
                OpKind::Reshape => {
                    let Some(AttrValue::Ints(spec)) = node.attrs.get("shape") else {
                        // Dynamic reshape of a constant: leave it alone.
                        break;
                    };
                    let total = src.len();
                    let mut dims: Vec<usize> = Vec::new();
                    let mut infer = None;
                    for (i, &d) in spec.iter().enumerate() {
                        if d == -1 {
                            infer = Some(i);
                            dims.push(1);
                        } else {
                            dims.push(d.max(0) as usize);
                        }
                    }
                    if let Some(i) = infer {
                        let known: usize = dims.iter().product();
                        if known == 0 || !total.is_multiple_of(known) {
                            break;
                        }
                        dims[i] = total / known;
                    }
                    match src.reshaped(&dims) {
                        Ok(t) => t,
                        Err(_) => break,
                    }
                }
                _ => unreachable!(),
            };
            let out_name = node.outputs[0].clone();
            let folded_name = format!("{out_name}__folded");
            graph.add_initializer(&folded_name, folded);
            graph.nodes_mut().remove(idx);
            replace_value(graph, &out_name, &folded_name);
            changed = true;
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Attributes;
    use crate::graph::{Node, ValueInfo};
    use orpheus_tensor::Tensor;

    #[test]
    fn folds_flatten_of_initializer() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1, 6]));
        g.add_initializer("w4d", Tensor::ones(&[10, 2, 3, 1]));
        g.add_node(Node::new("flat", OpKind::Flatten, &["w4d"], &["w2d"]));
        g.add_node(Node::new("fc", OpKind::Gemm, &["x", "w2d"], &["y"]));
        g.add_output("y");
        assert!(ConstantFold.run(&mut g).unwrap());
        assert_eq!(g.nodes().len(), 1);
        let folded = g.initializer(&g.nodes()[0].inputs[1]).unwrap();
        assert_eq!(folded.dims(), &[10, 6]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn folds_reshape_with_minus_one() {
        let mut g = Graph::new("t");
        g.add_initializer("w", Tensor::ones(&[2, 6]));
        g.add_node(
            Node::new("rs", OpKind::Reshape, &["w"], &["w2"])
                .with_attrs(Attributes::new().with("shape", AttrValue::Ints(vec![4, -1]))),
        );
        g.add_output("w2");
        assert!(ConstantFold.run(&mut g).unwrap());
        assert_eq!(g.nodes().len(), 0);
        assert_eq!(g.outputs()[0], "w2__folded");
    }

    #[test]
    fn leaves_non_constant_inputs() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[2, 3]));
        g.add_node(Node::new("flat", OpKind::Flatten, &["x"], &["y"]));
        g.add_output("y");
        assert!(!ConstantFold.run(&mut g).unwrap());
        assert_eq!(g.nodes().len(), 1);
    }
}
