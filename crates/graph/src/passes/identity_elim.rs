//! Removes inference-time no-ops: `Identity` and `Dropout`.

use crate::error::GraphError;
use crate::graph::{Graph, OpKind};
use crate::passes::{replace_value, Pass};

/// Eliminates `Identity` nodes and `Dropout` nodes (dropout is the identity
/// at inference time), rewiring consumers to the node's input.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityElim;

impl Pass for IdentityElim {
    fn name(&self) -> &str {
        "identity-elim"
    }

    fn run(&self, graph: &mut Graph) -> Result<bool, GraphError> {
        let mut changed = false;
        loop {
            let target = graph.nodes().iter().position(|n| {
                matches!(n.op, OpKind::Identity | OpKind::Dropout)
                    && !n.inputs.is_empty()
                    && !n.outputs.is_empty()
            });
            let Some(idx) = target else { break };
            let node = graph.nodes()[idx].clone();
            let from = node.outputs[0].clone();
            let to = node.inputs[0].clone();
            graph.nodes_mut().remove(idx);
            replace_value(graph, &from, &to);
            changed = true;
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Node, ValueInfo};

    #[test]
    fn removes_identity_chain() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1]));
        g.add_node(Node::new("i1", OpKind::Identity, &["x"], &["a"]));
        g.add_node(Node::new("i2", OpKind::Dropout, &["a"], &["b"]));
        g.add_node(Node::new("r", OpKind::Relu, &["b"], &["y"]));
        g.add_output("y");
        assert!(IdentityElim.run(&mut g).unwrap());
        assert_eq!(g.nodes().len(), 1);
        assert_eq!(g.nodes()[0].inputs[0], "x");
        assert!(g.validate().is_ok());
    }

    #[test]
    fn identity_feeding_graph_output() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1]));
        g.add_node(Node::new("r", OpKind::Relu, &["x"], &["a"]));
        g.add_node(Node::new("i", OpKind::Identity, &["a"], &["y"]));
        g.add_output("y");
        assert!(IdentityElim.run(&mut g).unwrap());
        assert_eq!(g.outputs(), &["a".to_string()]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn no_change_reports_false() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1]));
        g.add_node(Node::new("r", OpKind::Relu, &["x"], &["y"]));
        g.add_output("y");
        assert!(!IdentityElim.run(&mut g).unwrap());
    }
}
