//! Computation-graph IR and simplification passes for Orpheus.
//!
//! Models imported from ONNX land in this IR — a flat list of named
//! [`Node`]s connected by string-named values, plus weight initializers —
//! mirroring ONNX's `GraphProto` closely enough that the importer is a direct
//! structural translation.
//!
//! The paper lists "a system ... to apply simplifications to the computation
//! graph" as a core contribution; those simplifications live in [`passes`]:
//!
//! * identity/dropout elimination,
//! * batch-norm folding into the preceding convolution,
//! * activation fusion into the producing layer,
//! * constant folding of shape-only ops,
//! * dead-node and dead-initializer elimination.
//!
//! # Examples
//!
//! ```
//! use orpheus_graph::{Graph, Node, OpKind, ValueInfo};
//!
//! let mut g = Graph::new("tiny");
//! g.add_input(ValueInfo::new("x", &[1, 3, 8, 8]));
//! g.add_node(Node::new("relu0", OpKind::Relu, &["x"], &["y"]));
//! g.add_output("y");
//! assert!(g.validate().is_ok());
//! assert_eq!(g.topo_order().unwrap().len(), 1);
//! ```

#![forbid(unsafe_code)]
// IR integrity crate: panicking escape hatches are forbidden outside tests —
// malformed graphs must surface as `GraphError`s (or ORV diagnostics via
// orpheus-verify), never as panics.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod attributes;
mod error;
#[allow(clippy::module_inception)]
mod graph;
pub mod passes;
mod shape_infer;

pub use attributes::{AttrValue, Attributes};
pub use error::GraphError;
pub use graph::{Graph, Node, OpKind, ValueInfo};
pub use shape_infer::{infer_shapes, infer_shapes_with_batch};
