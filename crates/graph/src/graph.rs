//! The graph data structure.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;

use orpheus_tensor::Tensor;

use crate::attributes::Attributes;
use crate::error::GraphError;

/// Operator kinds understood by the graph layer.
///
/// The set matches what the five evaluation models need after ONNX import;
/// anything else round-trips through [`OpKind::Custom`] so third-party
/// backends can claim it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// 2-D convolution.
    Conv,
    /// Batch normalization (inference mode).
    BatchNormalization,
    /// ReLU activation.
    Relu,
    /// LeakyReLU activation.
    LeakyRelu,
    /// Clip (ReLU6 when bounds are 0/6).
    Clip,
    /// Sigmoid activation.
    Sigmoid,
    /// Tanh activation.
    Tanh,
    /// Max pooling.
    MaxPool,
    /// Average pooling.
    AveragePool,
    /// Global average pooling.
    GlobalAveragePool,
    /// Dense layer (ONNX `Gemm` with `transB = 1`).
    Gemm,
    /// Element-wise addition.
    Add,
    /// Element-wise multiplication.
    Mul,
    /// Channel concatenation.
    Concat,
    /// Softmax.
    Softmax,
    /// Constant padding.
    Pad,
    /// Mean over axes (`ReduceMean(axes=[2,3])` is how some exporters write
    /// global average pooling).
    ReduceMean,
    /// Flatten to 2-D.
    Flatten,
    /// Reshape (static shapes only).
    Reshape,
    /// Identity pass-through.
    Identity,
    /// Dropout (identity at inference time).
    Dropout,
    /// Any operator this crate does not model structurally.
    Custom(String),
}

impl OpKind {
    /// The ONNX operator name.
    pub fn onnx_name(&self) -> &str {
        match self {
            OpKind::Conv => "Conv",
            OpKind::BatchNormalization => "BatchNormalization",
            OpKind::Relu => "Relu",
            OpKind::LeakyRelu => "LeakyRelu",
            OpKind::Clip => "Clip",
            OpKind::Sigmoid => "Sigmoid",
            OpKind::Tanh => "Tanh",
            OpKind::MaxPool => "MaxPool",
            OpKind::AveragePool => "AveragePool",
            OpKind::GlobalAveragePool => "GlobalAveragePool",
            OpKind::Gemm => "Gemm",
            OpKind::Add => "Add",
            OpKind::Mul => "Mul",
            OpKind::Concat => "Concat",
            OpKind::Softmax => "Softmax",
            OpKind::Pad => "Pad",
            OpKind::ReduceMean => "ReduceMean",
            OpKind::Flatten => "Flatten",
            OpKind::Reshape => "Reshape",
            OpKind::Identity => "Identity",
            OpKind::Dropout => "Dropout",
            OpKind::Custom(name) => name,
        }
    }

    /// Parses an ONNX operator name.
    pub fn from_onnx_name(name: &str) -> OpKind {
        match name {
            "Conv" => OpKind::Conv,
            "BatchNormalization" => OpKind::BatchNormalization,
            "Relu" => OpKind::Relu,
            "LeakyRelu" => OpKind::LeakyRelu,
            "Clip" => OpKind::Clip,
            "Sigmoid" => OpKind::Sigmoid,
            "Tanh" => OpKind::Tanh,
            "MaxPool" => OpKind::MaxPool,
            "AveragePool" => OpKind::AveragePool,
            "GlobalAveragePool" => OpKind::GlobalAveragePool,
            "Gemm" => OpKind::Gemm,
            "Add" => OpKind::Add,
            "Mul" => OpKind::Mul,
            "Concat" => OpKind::Concat,
            "Softmax" => OpKind::Softmax,
            "Pad" => OpKind::Pad,
            "ReduceMean" => OpKind::ReduceMean,
            "Flatten" => OpKind::Flatten,
            "Reshape" => OpKind::Reshape,
            "Identity" => OpKind::Identity,
            "Dropout" => OpKind::Dropout,
            other => OpKind::Custom(other.to_string()),
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.onnx_name())
    }
}

/// One operator instance in the graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Unique node name.
    pub name: String,
    /// Operator kind.
    pub op: OpKind,
    /// Consumed value names, in operator-defined order.
    pub inputs: Vec<String>,
    /// Produced value names.
    pub outputs: Vec<String>,
    /// Operator attributes.
    pub attrs: Attributes,
}

impl Node {
    /// Creates a node with empty attributes.
    pub fn new(name: &str, op: OpKind, inputs: &[&str], outputs: &[&str]) -> Self {
        Node {
            name: name.to_string(),
            op,
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            outputs: outputs.iter().map(|s| s.to_string()).collect(),
            attrs: Attributes::new(),
        }
    }

    /// Sets the attribute map, for chaining.
    pub fn with_attrs(mut self, attrs: Attributes) -> Self {
        self.attrs = attrs;
        self
    }
}

/// A named value with a static shape (graph input declaration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueInfo {
    /// Value name.
    pub name: String,
    /// Static dims.
    pub dims: Vec<usize>,
}

impl ValueInfo {
    /// Creates a value declaration.
    pub fn new(name: &str, dims: &[usize]) -> Self {
        ValueInfo {
            name: name.to_string(),
            dims: dims.to_vec(),
        }
    }
}

/// A computation graph: nodes, inputs, outputs, and weight initializers.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    /// Human-readable graph name.
    pub name: String,
    nodes: Vec<Node>,
    inputs: Vec<ValueInfo>,
    outputs: Vec<String>,
    initializers: BTreeMap<String, Tensor>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new(name: &str) -> Self {
        Graph {
            name: name.to_string(),
            ..Graph::default()
        }
    }

    /// Appends a node.
    pub fn add_node(&mut self, node: Node) {
        self.nodes.push(node);
    }

    /// Declares a graph input.
    pub fn add_input(&mut self, info: ValueInfo) {
        self.inputs.push(info);
    }

    /// Declares a graph output.
    pub fn add_output(&mut self, name: &str) {
        self.outputs.push(name.to_string());
    }

    /// Registers a weight initializer.
    pub fn add_initializer(&mut self, name: &str, tensor: Tensor) {
        self.initializers.insert(name.to_string(), tensor);
    }

    /// The nodes, in insertion order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Mutable node access (used by passes).
    pub fn nodes_mut(&mut self) -> &mut Vec<Node> {
        &mut self.nodes
    }

    /// Graph inputs.
    pub fn inputs(&self) -> &[ValueInfo] {
        &self.inputs
    }

    /// Graph outputs.
    pub fn outputs(&self) -> &[String] {
        &self.outputs
    }

    /// Replaces the graph output list (used by rewiring passes).
    pub fn set_outputs(&mut self, outputs: Vec<String>) {
        self.outputs = outputs;
    }

    /// Weight initializers.
    pub fn initializers(&self) -> &BTreeMap<String, Tensor> {
        &self.initializers
    }

    /// Mutable initializer access (used by folding passes).
    pub fn initializers_mut(&mut self) -> &mut BTreeMap<String, Tensor> {
        &mut self.initializers
    }

    /// Looks up an initializer.
    pub fn initializer(&self, name: &str) -> Option<&Tensor> {
        self.initializers.get(name)
    }

    /// Total number of weight parameters.
    pub fn num_parameters(&self) -> usize {
        self.initializers.values().map(Tensor::len).sum()
    }

    /// Maps each value name to the index of the node producing it.
    pub fn producers(&self) -> HashMap<&str, usize> {
        let mut map = HashMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            for out in &node.outputs {
                map.insert(out.as_str(), i);
            }
        }
        map
    }

    /// Counts how many node inputs and graph outputs consume each value.
    pub fn consumer_counts(&self) -> HashMap<&str, usize> {
        let mut map: HashMap<&str, usize> = HashMap::new();
        for node in &self.nodes {
            for input in &node.inputs {
                *map.entry(input.as_str()).or_default() += 1;
            }
        }
        for out in &self.outputs {
            *map.entry(out.as_str()).or_default() += 1;
        }
        map
    }

    /// Checks structural invariants: unique producers, defined values,
    /// produced outputs, and acyclicity.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a [`GraphError`].
    pub fn validate(&self) -> Result<(), GraphError> {
        let mut produced: HashSet<&str> = HashSet::new();
        for info in &self.inputs {
            produced.insert(&info.name);
        }
        for name in self.initializers.keys() {
            produced.insert(name);
        }
        for node in &self.nodes {
            for out in &node.outputs {
                if !produced.insert(out) {
                    return Err(GraphError::DuplicateProducer(out.clone()));
                }
            }
        }
        for node in &self.nodes {
            for input in &node.inputs {
                if !input.is_empty() && !produced.contains(input.as_str()) {
                    return Err(GraphError::MissingValue {
                        value: input.clone(),
                        node: node.name.clone(),
                    });
                }
            }
        }
        for out in &self.outputs {
            if !produced.contains(out.as_str()) {
                return Err(GraphError::MissingOutput(out.clone()));
            }
        }
        self.topo_order()?;
        Ok(())
    }

    /// Node indices in a valid execution order (Kahn's algorithm).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] if the node dependencies are cyclic.
    pub fn topo_order(&self) -> Result<Vec<usize>, GraphError> {
        let producers = self.producers();
        let mut indegree = vec![0usize; self.nodes.len()];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for input in &node.inputs {
                if let Some(&p) = producers.get(input.as_str()) {
                    indegree[i] += 1;
                    dependents[p].push(i);
                }
            }
        }
        let mut queue: VecDeque<usize> = (0..self.nodes.len())
            .filter(|&i| indegree[i] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(i) = queue.pop_front() {
            order.push(i);
            for &d in &dependents[i] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    queue.push_back(d);
                }
            }
        }
        if order.len() != self.nodes.len() {
            return Err(GraphError::Cycle);
        }
        Ok(order)
    }

    /// A one-line-per-node textual rendering, for debugging and the CLI's
    /// `inspect` command.
    pub fn render(&self) -> String {
        let mut out = format!(
            "graph {} ({} nodes, {} params)\n",
            self.name,
            self.nodes.len(),
            self.num_parameters()
        );
        for node in &self.nodes {
            out.push_str(&format!(
                "  {} = {}({})",
                node.outputs.join(", "),
                node.op,
                node.inputs.join(", ")
            ));
            if !node.attrs.is_empty() {
                let attrs: Vec<String> =
                    node.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
                out.push_str(&format!(" [{}]", attrs.join(", ")));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_graph() -> Graph {
        let mut g = Graph::new("test");
        g.add_input(ValueInfo::new("x", &[1, 3, 4, 4]));
        g.add_node(Node::new("a", OpKind::Relu, &["x"], &["y"]));
        g.add_node(Node::new("b", OpKind::Softmax, &["y"], &["z"]));
        g.add_output("z");
        g
    }

    #[test]
    fn valid_linear_graph() {
        assert!(linear_graph().validate().is_ok());
        assert_eq!(linear_graph().topo_order().unwrap(), vec![0, 1]);
    }

    #[test]
    fn topo_order_handles_out_of_order_insertion() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1]));
        // Insert consumer before producer.
        g.add_node(Node::new("b", OpKind::Softmax, &["y"], &["z"]));
        g.add_node(Node::new("a", OpKind::Relu, &["x"], &["y"]));
        g.add_output("z");
        assert!(g.validate().is_ok());
        assert_eq!(g.topo_order().unwrap(), vec![1, 0]);
    }

    #[test]
    fn detects_duplicate_producer() {
        let mut g = linear_graph();
        g.add_node(Node::new("dup", OpKind::Relu, &["x"], &["y"]));
        assert!(matches!(
            g.validate(),
            Err(GraphError::DuplicateProducer(v)) if v == "y"
        ));
    }

    #[test]
    fn detects_missing_value() {
        let mut g = Graph::new("t");
        g.add_node(Node::new("a", OpKind::Relu, &["ghost"], &["y"]));
        g.add_output("y");
        assert!(matches!(g.validate(), Err(GraphError::MissingValue { .. })));
    }

    #[test]
    fn detects_missing_output() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1]));
        g.add_output("nope");
        assert!(matches!(g.validate(), Err(GraphError::MissingOutput(_))));
    }

    #[test]
    fn detects_cycle() {
        let mut g = Graph::new("t");
        g.add_node(Node::new("a", OpKind::Relu, &["z"], &["y"]));
        g.add_node(Node::new("b", OpKind::Relu, &["y"], &["z"]));
        g.add_output("z");
        assert!(matches!(g.topo_order(), Err(GraphError::Cycle)));
    }

    #[test]
    fn empty_optional_input_allowed() {
        // ONNX encodes omitted optional inputs as empty names.
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1]));
        g.add_node(Node::new("a", OpKind::Conv, &["x", "", ""], &["y"]));
        g.add_output("y");
        assert!(g.validate().is_ok());
    }

    #[test]
    fn initializer_counts_as_producer() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1]));
        g.add_initializer("w", Tensor::ones(&[2, 2]));
        g.add_node(Node::new("a", OpKind::Gemm, &["x", "w"], &["y"]));
        g.add_output("y");
        assert!(g.validate().is_ok());
        assert_eq!(g.num_parameters(), 4);
    }

    #[test]
    fn consumer_counts_include_graph_outputs() {
        let g = linear_graph();
        let counts = g.consumer_counts();
        assert_eq!(counts.get("y"), Some(&1));
        assert_eq!(counts.get("z"), Some(&1));
        assert_eq!(counts.get("x"), Some(&1));
    }

    #[test]
    fn op_kind_round_trips_through_onnx_names() {
        for op in [
            OpKind::Conv,
            OpKind::BatchNormalization,
            OpKind::GlobalAveragePool,
            OpKind::Custom("MyOp".into()),
        ] {
            assert_eq!(OpKind::from_onnx_name(op.onnx_name()), op);
        }
    }

    #[test]
    fn render_mentions_every_node() {
        let text = linear_graph().render();
        assert!(text.contains("Relu"));
        assert!(text.contains("Softmax"));
    }
}
