//! Node attributes, mirroring ONNX `AttributeProto` values.

use std::collections::BTreeMap;
use std::fmt;

/// One attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// 64-bit integer (ONNX `INT`).
    Int(i64),
    /// Integer list (ONNX `INTS`) — strides, pads, kernel shapes.
    Ints(Vec<i64>),
    /// 32-bit float (ONNX `FLOAT`) — epsilon, alpha.
    Float(f32),
    /// Float list (ONNX `FLOATS`).
    Floats(Vec<f32>),
    /// UTF-8 string (ONNX `STRING`) — auto_pad, fused activation tags.
    Str(String),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Ints(v) => write!(f, "{v:?}"),
            AttrValue::Float(v) => write!(f, "{v}"),
            AttrValue::Floats(v) => write!(f, "{v:?}"),
            AttrValue::Str(v) => write!(f, "{v:?}"),
        }
    }
}

/// An ordered attribute map.
///
/// Ordered so that serialized graphs are deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Attributes(BTreeMap<String, AttrValue>);

impl Attributes {
    /// An empty attribute map.
    pub fn new() -> Self {
        Attributes::default()
    }

    /// Inserts an attribute, returning `self` for chaining.
    pub fn with(mut self, key: &str, value: AttrValue) -> Self {
        self.0.insert(key.to_string(), value);
        self
    }

    /// Inserts an attribute.
    pub fn set(&mut self, key: &str, value: AttrValue) {
        self.0.insert(key.to_string(), value);
    }

    /// Removes an attribute, returning its old value.
    pub fn remove(&mut self, key: &str) -> Option<AttrValue> {
        self.0.remove(key)
    }

    /// Looks up an attribute.
    pub fn get(&self, key: &str) -> Option<&AttrValue> {
        self.0.get(key)
    }

    /// Integer attribute, or `default` when absent.
    ///
    /// Returns `default` (not an error) for wrongly-typed values; importers
    /// validate types up front.
    pub fn int_or(&self, key: &str, default: i64) -> i64 {
        match self.0.get(key) {
            Some(AttrValue::Int(v)) => *v,
            _ => default,
        }
    }

    /// Float attribute, or `default` when absent.
    pub fn float_or(&self, key: &str, default: f32) -> f32 {
        match self.0.get(key) {
            Some(AttrValue::Float(v)) => *v,
            _ => default,
        }
    }

    /// Integer-list attribute as `usize`s, or `default` when absent.
    pub fn ints_or(&self, key: &str, default: &[usize]) -> Vec<usize> {
        match self.0.get(key) {
            Some(AttrValue::Ints(v)) => v.iter().map(|&x| x.max(0) as usize).collect(),
            _ => default.to_vec(),
        }
    }

    /// String attribute, if present and a string.
    pub fn str_opt(&self, key: &str) -> Option<&str> {
        match self.0.get(key) {
            Some(AttrValue::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Iterates attributes in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AttrValue)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_accessors_with_defaults() {
        let a = Attributes::new()
            .with("group", AttrValue::Int(2))
            .with("epsilon", AttrValue::Float(1e-5))
            .with("strides", AttrValue::Ints(vec![2, 2]))
            .with("auto_pad", AttrValue::Str("SAME_UPPER".into()));
        assert_eq!(a.int_or("group", 1), 2);
        assert_eq!(a.int_or("missing", 1), 1);
        assert!((a.float_or("epsilon", 0.0) - 1e-5).abs() < 1e-10);
        assert_eq!(a.ints_or("strides", &[1, 1]), vec![2, 2]);
        assert_eq!(a.ints_or("pads", &[0, 0]), vec![0, 0]);
        assert_eq!(a.str_opt("auto_pad"), Some("SAME_UPPER"));
        assert_eq!(a.str_opt("group"), None);
    }

    #[test]
    fn wrong_type_returns_default() {
        let a = Attributes::new().with("k", AttrValue::Str("x".into()));
        assert_eq!(a.int_or("k", 7), 7);
    }

    #[test]
    fn iteration_is_key_ordered() {
        let a = Attributes::new()
            .with("zeta", AttrValue::Int(1))
            .with("alpha", AttrValue::Int(2));
        let keys: Vec<&str> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["alpha", "zeta"]);
    }

    #[test]
    fn negative_ints_clamp_to_zero_in_usize_view() {
        let a = Attributes::new().with("pads", AttrValue::Ints(vec![-1, 2]));
        assert_eq!(a.ints_or("pads", &[]), vec![0, 2]);
    }

    #[test]
    fn remove_and_len() {
        let mut a = Attributes::new().with("x", AttrValue::Int(1));
        assert_eq!(a.len(), 1);
        assert_eq!(a.remove("x"), Some(AttrValue::Int(1)));
        assert!(a.is_empty());
    }
}
