//! Graph-level errors.

use std::error::Error;
use std::fmt;

/// Error raised by graph construction, validation, or transformation.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// Two nodes produce the same value name.
    DuplicateProducer(String),
    /// A node consumes a value no node, input, or initializer produces.
    MissingValue {
        /// The missing value name.
        value: String,
        /// The consuming node.
        node: String,
    },
    /// The graph contains a cycle.
    Cycle,
    /// A graph output name is not produced anywhere.
    MissingOutput(String),
    /// Shape inference failed.
    ShapeInference {
        /// The node at which inference failed.
        node: String,
        /// Why.
        reason: String,
    },
    /// A pass found an invariant violated.
    Pass {
        /// Pass name.
        pass: String,
        /// Why.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DuplicateProducer(v) => write!(f, "value {v:?} has multiple producers"),
            GraphError::MissingValue { value, node } => {
                write!(f, "node {node:?} consumes undefined value {value:?}")
            }
            GraphError::Cycle => write!(f, "graph contains a cycle"),
            GraphError::MissingOutput(v) => write!(f, "graph output {v:?} is never produced"),
            GraphError::ShapeInference { node, reason } => {
                write!(f, "shape inference failed at node {node:?}: {reason}")
            }
            GraphError::Pass { pass, reason } => write!(f, "pass {pass:?} failed: {reason}"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_descriptive() {
        let e = GraphError::MissingValue {
            value: "w".into(),
            node: "conv0".into(),
        };
        assert!(e.to_string().contains("conv0"));
        assert!(e.to_string().contains('w'));
        assert!(!GraphError::Cycle.to_string().is_empty());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
