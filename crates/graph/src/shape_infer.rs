//! Static shape inference over the graph.
//!
//! Orpheus executes with static shapes, but the leading (batch) dimension is
//! *symbolic*: [`infer_shapes`] infers at the graph's declared batch, and
//! [`infer_shapes_with_batch`] re-infers the whole graph with the leading dim
//! of every graph input overridden. The lowering and memory planner in the
//! core crate call the latter once per batch bucket, so a single load serves
//! a ladder of batch sizes.

use std::collections::HashMap;

use crate::error::GraphError;
use crate::graph::{Graph, Node, OpKind};

/// Infers the shape of every value in the graph.
///
/// Returns a map from value name to dims. Custom ops propagate their first
/// input's shape (a reasonable default for the element-wise third-party ops
/// backends register).
///
/// # Errors
///
/// Returns [`GraphError::ShapeInference`] when an operator's inputs are
/// inconsistent, or [`GraphError::Cycle`] for cyclic graphs.
pub fn infer_shapes(graph: &Graph) -> Result<HashMap<String, Vec<usize>>, GraphError> {
    infer_shapes_inner(graph, None)
}

/// Infers every value shape with the leading (batch) dimension of each graph
/// input overridden to `batch`.
///
/// This is the symbolic-N entry point: the graph's declared input dims fix
/// the per-image tail, and the batch extent is substituted before inference
/// runs, so downstream ops (conv, pooling, gemm, concat, …) all see the
/// requested batch. Models whose graphs pin the batch internally (e.g. a
/// `Reshape` whose static spec hard-codes the declared batch) fail inference
/// at any other batch — a clean "this model is not batchable" signal.
///
/// # Errors
///
/// Same failure modes as [`infer_shapes`], plus a [`GraphError::ShapeInference`]
/// when `batch` is 0 or a graph input has rank 0 (no leading dim to rebind).
pub fn infer_shapes_with_batch(
    graph: &Graph,
    batch: usize,
) -> Result<HashMap<String, Vec<usize>>, GraphError> {
    if batch == 0 {
        return Err(GraphError::ShapeInference {
            node: "<inputs>".into(),
            reason: "batch size must be at least 1".into(),
        });
    }
    infer_shapes_inner(graph, Some(batch))
}

fn infer_shapes_inner(
    graph: &Graph,
    batch: Option<usize>,
) -> Result<HashMap<String, Vec<usize>>, GraphError> {
    let mut shapes: HashMap<String, Vec<usize>> = HashMap::new();
    for info in graph.inputs() {
        let mut dims = info.dims.clone();
        if let Some(n) = batch {
            match dims.first_mut() {
                Some(lead) => *lead = n,
                None => {
                    return Err(GraphError::ShapeInference {
                        node: info.name.clone(),
                        reason: "rank-0 input has no batch dimension".into(),
                    });
                }
            }
        }
        shapes.insert(info.name.clone(), dims);
    }
    for (name, tensor) in graph.initializers() {
        shapes.insert(name.clone(), tensor.dims().to_vec());
    }
    for idx in graph.topo_order()? {
        let node = &graph.nodes()[idx];
        infer_node(graph, node, &mut shapes)?;
    }
    Ok(shapes)
}

fn err(node: &Node, reason: impl Into<String>) -> GraphError {
    GraphError::ShapeInference {
        node: node.name.clone(),
        reason: reason.into(),
    }
}

fn input_shape<'a>(
    node: &Node,
    shapes: &'a HashMap<String, Vec<usize>>,
    idx: usize,
) -> Result<&'a [usize], GraphError> {
    let name = node
        .inputs
        .get(idx)
        .filter(|n| !n.is_empty())
        .ok_or_else(|| err(node, format!("missing input #{idx}")))?;
    shapes
        .get(name)
        .map(Vec::as_slice)
        .ok_or_else(|| err(node, format!("unknown shape for input {name:?}")))
}

/// Output extent of one spatial convolution/pooling dimension.
///
/// All arithmetic is checked: attribute values come straight from untrusted
/// model bytes, so a huge kernel, pad, or dilation must surface as a shape
/// error rather than overflow.
fn spatial_out(
    input: usize,
    kernel: usize,
    stride: usize,
    pad_total: usize,
    dilation: usize,
) -> Result<usize, String> {
    if kernel == 0 {
        return Err("kernel extent is 0".into());
    }
    let effective = dilation
        .checked_mul(kernel - 1)
        .and_then(|v| v.checked_add(1))
        .ok_or_else(|| format!("dilated kernel overflows: dilation {dilation} kernel {kernel}"))?;
    let padded = input
        .checked_add(pad_total)
        .ok_or_else(|| format!("padded extent overflows: input {input} pads {pad_total}"))?;
    Ok(padded.saturating_sub(effective) / stride.max(1) + 1)
}

/// Product of dims, or `None` on overflow.
fn checked_product<'a>(dims: impl IntoIterator<Item = &'a usize>) -> Option<usize> {
    dims.into_iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
}

/// Reads a 2-element spatial attribute (kernel/strides/dilations), rejecting
/// lists of any other length so indexing can never panic.
fn spatial_pair(node: &Node, name: &str, default: [usize; 2]) -> Result<[usize; 2], GraphError> {
    let v = node.attrs.ints_or(name, &default);
    match v.as_slice() {
        [h, w] => Ok([*h, *w]),
        other => Err(err(
            node,
            format!("{name} expects 2 values, got {}", other.len()),
        )),
    }
}

fn infer_node(
    graph: &Graph,
    node: &Node,
    shapes: &mut HashMap<String, Vec<usize>>,
) -> Result<(), GraphError> {
    let out_shape: Vec<usize> = match &node.op {
        OpKind::Conv => {
            let x = input_shape(node, shapes, 0)?;
            let w = input_shape(node, shapes, 1)?;
            if x.len() != 4 || w.len() != 4 {
                return Err(err(node, "Conv expects rank-4 input and weight"));
            }
            let kernel = spatial_pair(node, "kernel_shape", [w[2], w[3]])?;
            let strides = spatial_pair(node, "strides", [1, 1])?;
            let pads = node.attrs.ints_or("pads", &[0, 0, 0, 0]);
            let dilations = spatial_pair(node, "dilations", [1, 1])?;
            let (pt, pl, pb, pr) = pads_4(&pads);
            let pad_h = pt
                .checked_add(pb)
                .ok_or_else(|| err(node, "pads overflow"))?;
            let pad_w = pl
                .checked_add(pr)
                .ok_or_else(|| err(node, "pads overflow"))?;
            vec![
                x[0],
                w[0],
                spatial_out(x[2], kernel[0], strides[0], pad_h, dilations[0])
                    .map_err(|m| err(node, m))?,
                spatial_out(x[3], kernel[1], strides[1], pad_w, dilations[1])
                    .map_err(|m| err(node, m))?,
            ]
        }
        OpKind::MaxPool | OpKind::AveragePool => {
            let x = input_shape(node, shapes, 0)?;
            if x.len() != 4 {
                return Err(err(node, "pooling expects rank-4 input"));
            }
            let kernel = spatial_pair(node, "kernel_shape", [1, 1])?;
            let strides = spatial_pair(node, "strides", kernel)?;
            let pads = node.attrs.ints_or("pads", &[0, 0, 0, 0]);
            let (pt, pl, pb, pr) = pads_4(&pads);
            let pad_h = pt
                .checked_add(pb)
                .ok_or_else(|| err(node, "pads overflow"))?;
            let pad_w = pl
                .checked_add(pr)
                .ok_or_else(|| err(node, "pads overflow"))?;
            vec![
                x[0],
                x[1],
                spatial_out(x[2], kernel[0], strides[0], pad_h, 1).map_err(|m| err(node, m))?,
                spatial_out(x[3], kernel[1], strides[1], pad_w, 1).map_err(|m| err(node, m))?,
            ]
        }
        OpKind::GlobalAveragePool => {
            let x = input_shape(node, shapes, 0)?;
            if x.len() != 4 {
                return Err(err(node, "GlobalAveragePool expects rank-4 input"));
            }
            vec![x[0], x[1], 1, 1]
        }
        OpKind::Gemm => {
            let x = input_shape(node, shapes, 0)?;
            let w = input_shape(node, shapes, 1)?;
            if w.len() != 2 {
                return Err(err(node, "Gemm expects rank-2 weight"));
            }
            if node.attrs.int_or("transB", 1) != 1 {
                return Err(err(node, "only transB=1 Gemm is supported"));
            }
            let batch = x.first().copied().unwrap_or(1);
            let features = checked_product(x.iter().skip(1))
                .ok_or_else(|| err(node, "Gemm feature count overflows"))?;
            if features != w[1] {
                return Err(err(
                    node,
                    format!("Gemm features {features} != weight in-dim {}", w[1]),
                ));
            }
            vec![batch, w[0]]
        }
        OpKind::Add | OpKind::Mul => {
            let a = input_shape(node, shapes, 0)?.to_vec();
            let b = input_shape(node, shapes, 1)?;
            if a != b {
                return Err(err(
                    node,
                    format!("element-wise shape mismatch {a:?} vs {b:?}"),
                ));
            }
            a
        }
        OpKind::Concat => {
            let axis = node.attrs.int_or("axis", 1).max(0) as usize;
            let first = input_shape(node, shapes, 0)?.to_vec();
            if axis >= first.len() {
                return Err(err(node, format!("concat axis {axis} out of range")));
            }
            let mut total = 0;
            for i in 0..node.inputs.len() {
                let s = input_shape(node, shapes, i)?;
                if s.len() != first.len() {
                    return Err(err(node, "concat rank mismatch"));
                }
                for (d, (&sa, &sf)) in s.iter().zip(&first).enumerate() {
                    if d != axis && sa != sf {
                        return Err(err(node, "concat non-axis dims must match"));
                    }
                }
                total = s[axis]
                    .checked_add(total)
                    .ok_or_else(|| err(node, "concat extent overflows"))?;
            }
            let mut out = first;
            out[axis] = total;
            out
        }
        OpKind::Pad => {
            let x = input_shape(node, shapes, 0)?;
            let pads = node.attrs.ints_or("pads", &[]);
            if pads.len() != 2 * x.len() {
                return Err(err(
                    node,
                    format!("Pad expects {} pad values, got {}", 2 * x.len(), pads.len()),
                ));
            }
            x.iter()
                .enumerate()
                .map(|(d, &extent)| {
                    extent
                        .checked_add(pads[d])
                        .and_then(|v| v.checked_add(pads[x.len() + d]))
                        .ok_or_else(|| err(node, "padded extent overflows"))
                })
                .collect::<Result<_, _>>()?
        }
        OpKind::ReduceMean => {
            let x = input_shape(node, shapes, 0)?;
            let axes = node.attrs.ints_or("axes", &[]);
            let keepdims = node.attrs.int_or("keepdims", 1) != 0;
            for &a in &axes {
                if a >= x.len() {
                    return Err(err(node, format!("ReduceMean axis {a} out of range")));
                }
            }
            let mut out = Vec::new();
            for (d, &extent) in x.iter().enumerate() {
                if axes.contains(&d) {
                    if keepdims {
                        out.push(1);
                    }
                } else {
                    out.push(extent);
                }
            }
            out
        }
        OpKind::Flatten => {
            let x = input_shape(node, shapes, 0)?;
            let axis = node.attrs.int_or("axis", 1).max(0) as usize;
            let axis = axis.min(x.len());
            let lead = checked_product(&x[..axis])
                .ok_or_else(|| err(node, "Flatten lead extent overflows"))?;
            let trail = checked_product(&x[axis..])
                .ok_or_else(|| err(node, "Flatten trail extent overflows"))?;
            vec![lead.max(1), trail.max(1)]
        }
        OpKind::Reshape => {
            let x = input_shape(node, shapes, 0)?;
            let total = checked_product(x.iter())
                .ok_or_else(|| err(node, "Reshape input extent overflows"))?;
            let spec = node
                .attrs
                .get("shape")
                .and_then(|v| match v {
                    crate::attributes::AttrValue::Ints(is) => Some(is.clone()),
                    _ => None,
                })
                .ok_or_else(|| err(node, "Reshape requires a static `shape` attribute"))?;
            resolve_reshape(&spec, total).map_err(|m| err(node, m))?
        }
        OpKind::BatchNormalization
        | OpKind::Relu
        | OpKind::LeakyRelu
        | OpKind::Clip
        | OpKind::Sigmoid
        | OpKind::Tanh
        | OpKind::Softmax
        | OpKind::Identity
        | OpKind::Dropout => input_shape(node, shapes, 0)?.to_vec(),
        OpKind::Custom(_) => input_shape(node, shapes, 0)?.to_vec(),
    };
    // All modeled ops have one (primary) output; extra outputs (e.g.
    // Dropout's mask) are not shape-tracked.
    let out = node
        .outputs
        .first()
        .ok_or_else(|| err(node, "node has no outputs"))?;
    shapes.insert(out.clone(), out_shape);
    let _ = graph;
    Ok(())
}

/// ONNX pads `[t, l, b, r]`; tolerate 2-element `[h, w]` shorthand.
fn pads_4(pads: &[usize]) -> (usize, usize, usize, usize) {
    match pads.len() {
        4 => (pads[0], pads[1], pads[2], pads[3]),
        2 => (pads[0], pads[1], pads[0], pads[1]),
        _ => (0, 0, 0, 0),
    }
}

/// Resolves an ONNX reshape spec (`0` = copy input dim, `-1` = infer).
fn resolve_reshape(spec: &[i64], total: usize) -> Result<Vec<usize>, String> {
    let mut out: Vec<usize> = Vec::with_capacity(spec.len());
    let mut infer_at: Option<usize> = None;
    for (i, &d) in spec.iter().enumerate() {
        match d {
            -1 => {
                if infer_at.is_some() {
                    return Err("multiple -1 dims in reshape".into());
                }
                infer_at = Some(i);
                out.push(1);
            }
            d if d >= 0 => out.push(d as usize),
            _ => return Err(format!("invalid reshape dim {d}")),
        }
    }
    let known = checked_product(out.iter()).ok_or("reshape spec overflows")?;
    if let Some(i) = infer_at {
        if known == 0 || !total.is_multiple_of(known) {
            return Err(format!("cannot infer reshape dim: {total} / {known}"));
        }
        out[i] = total / known;
    } else if known != total {
        return Err(format!("reshape element mismatch: {known} != {total}"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{AttrValue, Attributes};
    use crate::graph::{Node, ValueInfo};
    use orpheus_tensor::Tensor;

    fn conv_attrs(k: usize, s: usize, p: usize) -> Attributes {
        Attributes::new()
            .with("kernel_shape", AttrValue::Ints(vec![k as i64, k as i64]))
            .with("strides", AttrValue::Ints(vec![s as i64, s as i64]))
            .with(
                "pads",
                AttrValue::Ints(vec![p as i64, p as i64, p as i64, p as i64]),
            )
    }

    #[test]
    fn conv_shape_resnet_stem() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1, 3, 224, 224]));
        g.add_initializer("w", Tensor::zeros(&[64, 3, 7, 7]));
        g.add_node(
            Node::new("c", OpKind::Conv, &["x", "w"], &["y"]).with_attrs(conv_attrs(7, 2, 3)),
        );
        g.add_output("y");
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes["y"], vec![1, 64, 112, 112]);
    }

    #[test]
    fn pool_defaults_stride_to_kernel() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1, 8, 8, 8]));
        g.add_node(
            Node::new("p", OpKind::MaxPool, &["x"], &["y"])
                .with_attrs(Attributes::new().with("kernel_shape", AttrValue::Ints(vec![2, 2]))),
        );
        g.add_output("y");
        assert_eq!(infer_shapes(&g).unwrap()["y"], vec![1, 8, 4, 4]);
    }

    #[test]
    fn global_pool_and_gemm_chain() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1, 512, 7, 7]));
        g.add_initializer("w", Tensor::zeros(&[1000, 512]));
        g.add_node(Node::new("g", OpKind::GlobalAveragePool, &["x"], &["p"]));
        g.add_node(Node::new("f", OpKind::Flatten, &["p"], &["flat"]));
        g.add_node(Node::new("fc", OpKind::Gemm, &["flat", "w"], &["y"]));
        g.add_output("y");
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes["p"], vec![1, 512, 1, 1]);
        assert_eq!(shapes["flat"], vec![1, 512]);
        assert_eq!(shapes["y"], vec![1, 1000]);
    }

    #[test]
    fn gemm_rejects_feature_mismatch() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1, 100]));
        g.add_initializer("w", Tensor::zeros(&[10, 99]));
        g.add_node(Node::new("fc", OpKind::Gemm, &["x", "w"], &["y"]));
        g.add_output("y");
        assert!(matches!(
            infer_shapes(&g),
            Err(GraphError::ShapeInference { .. })
        ));
    }

    #[test]
    fn concat_sums_channel_axis() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("a", &[1, 3, 5, 5]));
        g.add_input(ValueInfo::new("b", &[1, 7, 5, 5]));
        g.add_node(
            Node::new("c", OpKind::Concat, &["a", "b"], &["y"])
                .with_attrs(Attributes::new().with("axis", AttrValue::Int(1))),
        );
        g.add_output("y");
        assert_eq!(infer_shapes(&g).unwrap()["y"], vec![1, 10, 5, 5]);
    }

    #[test]
    fn concat_rejects_spatial_mismatch() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("a", &[1, 3, 5, 5]));
        g.add_input(ValueInfo::new("b", &[1, 7, 6, 5]));
        g.add_node(Node::new("c", OpKind::Concat, &["a", "b"], &["y"]));
        g.add_output("y");
        assert!(infer_shapes(&g).is_err());
    }

    #[test]
    fn add_requires_same_shape() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("a", &[1, 3]));
        g.add_input(ValueInfo::new("b", &[1, 4]));
        g.add_node(Node::new("s", OpKind::Add, &["a", "b"], &["y"]));
        g.add_output("y");
        assert!(infer_shapes(&g).is_err());
    }

    #[test]
    fn reshape_resolves_zero_and_minus_one() {
        assert_eq!(resolve_reshape(&[2, -1], 10).unwrap(), vec![2, 5]);
        assert_eq!(resolve_reshape(&[10], 10).unwrap(), vec![10]);
        assert!(resolve_reshape(&[-1, -1], 10).is_err());
        assert!(resolve_reshape(&[3], 10).is_err());
    }

    #[test]
    fn conv_with_huge_attrs_errors_instead_of_overflowing() {
        // Attribute values come from untrusted bytes; i64::MAX clamps to a
        // huge usize in `ints_or` and used to overflow the spatial math.
        let huge = i64::MAX;
        for (name, values) in [
            ("pads", vec![huge, huge, huge, huge]),
            ("kernel_shape", vec![0, 0]),
            ("kernel_shape", vec![3]), // wrong arity must not panic on index
        ] {
            let mut g = Graph::new("t");
            g.add_input(ValueInfo::new("x", &[1, 1, 8, 8]));
            g.add_initializer("w", Tensor::zeros(&[1, 1, 3, 3]));
            g.add_node(
                Node::new("c", OpKind::Conv, &["x", "w"], &["y"])
                    .with_attrs(Attributes::new().with(name, AttrValue::Ints(values))),
            );
            g.add_output("y");
            assert!(
                matches!(infer_shapes(&g), Err(GraphError::ShapeInference { .. })),
                "attr {name} must yield a shape error"
            );
        }
    }

    #[test]
    fn pad_with_huge_pads_errors() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1, 1, 4, 4]));
        g.add_node(
            Node::new("p", OpKind::Pad, &["x"], &["y"])
                .with_attrs(Attributes::new().with("pads", AttrValue::Ints(vec![i64::MAX; 8]))),
        );
        g.add_output("y");
        assert!(matches!(
            infer_shapes(&g),
            Err(GraphError::ShapeInference { .. })
        ));
    }

    #[test]
    fn reshape_overflow_spec_errors() {
        let big = i64::MAX;
        assert!(resolve_reshape(&[big, big], 10).is_err());
    }

    #[test]
    fn batched_inference_scales_the_leading_dim_through_the_graph() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1, 512, 7, 7]));
        g.add_initializer("w", Tensor::zeros(&[1000, 512]));
        g.add_node(Node::new("g", OpKind::GlobalAveragePool, &["x"], &["p"]));
        g.add_node(Node::new("f", OpKind::Flatten, &["p"], &["flat"]));
        g.add_node(Node::new("fc", OpKind::Gemm, &["flat", "w"], &["y"]));
        g.add_output("y");
        let shapes = infer_shapes_with_batch(&g, 4).unwrap();
        assert_eq!(shapes["x"], vec![4, 512, 7, 7]);
        assert_eq!(shapes["p"], vec![4, 512, 1, 1]);
        assert_eq!(shapes["flat"], vec![4, 512]);
        assert_eq!(shapes["y"], vec![4, 1000]);
    }

    #[test]
    fn batched_inference_at_declared_batch_matches_unbatched() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1, 3, 8, 8]));
        g.add_initializer("w", Tensor::zeros(&[4, 3, 3, 3]));
        g.add_node(
            Node::new("c", OpKind::Conv, &["x", "w"], &["y"]).with_attrs(conv_attrs(3, 1, 1)),
        );
        g.add_output("y");
        assert_eq!(
            infer_shapes(&g).unwrap(),
            infer_shapes_with_batch(&g, 1).unwrap()
        );
    }

    #[test]
    fn batch_zero_is_rejected() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1, 3]));
        g.add_node(Node::new("r", OpKind::Relu, &["x"], &["y"]));
        g.add_output("y");
        assert!(matches!(
            infer_shapes_with_batch(&g, 0),
            Err(GraphError::ShapeInference { .. })
        ));
    }

    #[test]
    fn batch_pinning_reshape_fails_cleanly_at_other_batches() {
        // A static reshape spec that hard-codes the declared batch makes the
        // model unbatchable: element counts stop matching at batch 2.
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[1, 6]));
        g.add_node(
            Node::new("r", OpKind::Reshape, &["x"], &["y"])
                .with_attrs(Attributes::new().with("shape", AttrValue::Ints(vec![1, 2, 3]))),
        );
        g.add_output("y");
        assert!(infer_shapes(&g).is_ok());
        assert!(matches!(
            infer_shapes_with_batch(&g, 2),
            Err(GraphError::ShapeInference { .. })
        ));
    }

    #[test]
    fn elementwise_ops_preserve_shape() {
        let mut g = Graph::new("t");
        g.add_input(ValueInfo::new("x", &[2, 3, 4, 4]));
        g.add_node(Node::new("r", OpKind::Relu, &["x"], &["a"]));
        g.add_node(Node::new("s", OpKind::Sigmoid, &["a"], &["b"]));
        g.add_node(Node::new("d", OpKind::Dropout, &["b"], &["c"]));
        g.add_output("c");
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes["c"], vec![2, 3, 4, 4]);
    }
}
