//! Property tests for the simplification pipeline: on randomly generated
//! valid graphs, the standard passes must preserve structural validity, the
//! output interface, and reachability of every output.

use orpheus_graph::{passes::PassManager, AttrValue, Attributes, Graph, Node, OpKind, ValueInfo};
use orpheus_tensor::Tensor;
use proptest::prelude::*;

/// Element-wise op kinds safe to chain arbitrarily (shape-preserving).
fn unary_op(idx: usize) -> OpKind {
    match idx % 6 {
        0 => OpKind::Relu,
        1 => OpKind::Sigmoid,
        2 => OpKind::Tanh,
        3 => OpKind::Identity,
        4 => OpKind::Dropout,
        _ => OpKind::Softmax,
    }
}

/// Builds a random chain: input → [conv(+bn)? | unary]* → output, with an
/// occasional residual add joining two earlier values of the same shape.
fn random_chain(ops: &[usize], channels: usize) -> Graph {
    let mut g = Graph::new("random");
    g.add_input(ValueInfo::new("x", &[1, channels, 6, 6]));
    let mut cur = "x".to_string();
    // Same-shape history for residual adds.
    let mut history = vec![cur.clone()];
    for (i, &op) in ops.iter().enumerate() {
        let out = format!("v{i}");
        match op % 8 {
            // Conv (channel-preserving 3x3) optionally followed by BN.
            0 | 1 => {
                let w = format!("w{i}");
                g.add_initializer(&w, Tensor::full(&[channels, channels, 3, 3], 0.01));
                g.add_node(
                    Node::new(&format!("conv{i}"), OpKind::Conv, &[&cur, &w], &[&out]).with_attrs(
                        Attributes::new()
                            .with("kernel_shape", AttrValue::Ints(vec![3, 3]))
                            .with("strides", AttrValue::Ints(vec![1, 1]))
                            .with("pads", AttrValue::Ints(vec![1, 1, 1, 1])),
                    ),
                );
                if op % 8 == 1 {
                    for (suffix, value) in [("s", 1.0f32), ("b", 0.0), ("m", 0.0), ("v", 1.0)] {
                        g.add_initializer(
                            &format!("bn{i}{suffix}"),
                            Tensor::full(&[channels], value),
                        );
                    }
                    let bn_out = format!("vbn{i}");
                    g.add_node(Node::new(
                        &format!("bn{i}"),
                        OpKind::BatchNormalization,
                        &[
                            &out,
                            &format!("bn{i}s"),
                            &format!("bn{i}b"),
                            &format!("bn{i}m"),
                            &format!("bn{i}v"),
                        ],
                        &[&bn_out],
                    ));
                    cur = bn_out;
                } else {
                    cur = out;
                }
            }
            // Residual add with an earlier same-shape value.
            2 => {
                let other = history[op % history.len()].clone();
                g.add_node(Node::new(
                    &format!("add{i}"),
                    OpKind::Add,
                    &[&cur, &other],
                    &[&out],
                ));
                cur = out;
            }
            other => {
                g.add_node(Node::new(
                    &format!("u{i}"),
                    unary_op(other),
                    &[&cur],
                    &[&out],
                ));
                cur = out;
            }
        }
        history.push(cur.clone());
    }
    g.add_output(&cur);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The standard pipeline preserves validity, the single output, and
    /// shape inferability on arbitrary op chains.
    #[test]
    fn passes_preserve_invariants(
        ops in prop::collection::vec(0usize..8, 1..12),
        channels in 1usize..4,
    ) {
        let mut g = random_chain(&ops, channels);
        prop_assert!(g.validate().is_ok(), "generator produced invalid graph");
        let before_outputs = g.outputs().to_vec();
        let shapes_before = orpheus_graph::infer_shapes(&g).expect("pre-pass shapes");
        let out_shape_before = shapes_before[&before_outputs[0]].clone();

        PassManager::standard().run_to_fixpoint(&mut g).expect("passes run");

        prop_assert!(g.validate().is_ok(), "passes broke validity:\n{}", g.render());
        prop_assert_eq!(g.outputs().len(), 1);
        let shapes_after = orpheus_graph::infer_shapes(&g).expect("post-pass shapes");
        let out_shape_after = shapes_after[&g.outputs()[0]].clone();
        prop_assert_eq!(out_shape_before, out_shape_after, "output shape changed");
    }

    /// Passes are idempotent at the fixpoint: running the pipeline twice
    /// changes nothing the second time.
    #[test]
    fn passes_reach_fixpoint(
        ops in prop::collection::vec(0usize..8, 1..10),
    ) {
        let mut g = random_chain(&ops, 2);
        PassManager::standard().run_to_fixpoint(&mut g).expect("first run");
        let rendered = g.render();
        let changes = PassManager::standard().run_to_fixpoint(&mut g).expect("second run");
        prop_assert_eq!(changes, 0, "pipeline not at fixpoint");
        prop_assert_eq!(g.render(), rendered);
    }

    /// Pass pipeline never increases the node count.
    #[test]
    fn passes_never_grow_the_graph(
        ops in prop::collection::vec(0usize..8, 1..12),
    ) {
        let mut g = random_chain(&ops, 2);
        let before = g.nodes().len();
        PassManager::standard().run_to_fixpoint(&mut g).expect("passes run");
        prop_assert!(g.nodes().len() <= before);
    }
}
