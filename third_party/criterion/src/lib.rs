//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The sandboxed build environment for this repository cannot reach a
//! crates.io registry, so the real `criterion` cannot be vendored. This shim
//! keeps the workspace's bench targets compiling and *runnable*: it
//! implements the API slice the benches use (`Criterion::benchmark_group`,
//! `sample_size`, `throughput`, `bench_function`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!`) with a median-of-samples timer and
//! a plain-text report instead of statistical analysis and HTML output.
//!
//! Numbers printed by this shim are honest wall-clock medians but carry no
//! outlier rejection; headline results in EXPERIMENTS.md come from
//! `orpheus-cli`, which has its own measurement protocol.

use std::time::Instant;

/// Work-per-iteration declaration, used to derive a rate column.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (for this workspace: FLOPs) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n{name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        run_benchmark(&name, 10, None, f);
        self
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (report lines are emitted eagerly; nothing to flush).
    pub fn finish(self) {}
}

/// Handed to the benchmark closure; `iter` runs and times the payload.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` runs of `f` (after one untimed warm-up).
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        std::hint::black_box(f()); // warm-up, also defeats dead-code elision
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {label:<50} (no samples)");
        return;
    }
    bencher
        .samples
        .sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
    let median = bencher.samples[bencher.samples.len() / 2];
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  {:>10.2} Melem/s", n as f64 / median / 1e6)
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  {:>10.2} MiB/s", n as f64 / median / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("  {label:<50} median {}{rate}", format_time(median));
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Collects benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_payload() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut runs = 0usize;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        // one warm-up + 3 samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn time_formatting_spans_units() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with("ms"));
        assert!(format_time(2e-6).ends_with("us"));
        assert!(format_time(2e-9).ends_with("ns"));
    }
}
