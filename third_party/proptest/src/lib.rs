//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The sandboxed build environment for this repository has no access to a
//! crates.io registry, so the real `proptest` cannot be vendored. This shim
//! implements the slice of the API the workspace's property tests use —
//! range and `any::<T>()` strategies, `prop::collection::vec`, the
//! `proptest!` macro, `prop_assert!`/`prop_assert_eq!`/`prop_assume!` and
//! `ProptestConfig::with_cases` — on top of a deterministic SplitMix64
//! generator.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the sampled inputs via the
//!   assertion message (every `prop_assert!` in this workspace interpolates
//!   its inputs), but no minimization is attempted.
//! * **Deterministic.** Case `i` of test `t` always samples the same values,
//!   derived from a hash of the test name, so failures reproduce exactly.
//! * **Rejection sampling is bounded.** `prop_assume!` rejections simply
//!   skip the case; a test whose assumptions reject everything still
//!   terminates.

pub mod test_runner {
    /// Error type a generated test-case closure can return.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; try another sample.
        Reject(String),
    }

    /// Result type of a generated test-case closure.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of sampled cases to execute per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` sampled cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator used for all sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn next_below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// FNV-1a hash of a test name, used to derive per-test seeds.
    pub fn seed_of(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A value generator. Unlike real proptest there is no value tree or
    /// shrinking: a strategy just samples.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.next_below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.next_below(span + 1) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.next_below(span) as i64) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i64).wrapping_add(rng.next_below(span + 1) as i64) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (rng.next_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    /// Strategy produced by [`crate::arbitrary::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy for `Just`-style constants (parity with real proptest).
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Any;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            // Finite, sign-symmetric, spanning several orders of magnitude.
            let mag = (rng.next_f64() * 2.0 - 1.0) * 1e4;
            mag as f32
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.next_f64() * 2.0 - 1.0) * 1e8
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy generating `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.next_below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::proptest;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
}

/// Fails the current case (panics; there is no shrinking to drive).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert!({}) failed", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Equality assertion with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!("prop_assert_eq! failed: {:?} != {:?}", l, r);
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!($($fmt)*);
        }
    }};
}

/// Inequality assertion with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!("prop_assert_ne! failed: both {:?}", l);
        }
    }};
}

/// Rejects the current case; the runner draws a fresh sample.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// The `proptest! { ... }` block: expands each `fn name(arg in strategy)`
/// into a `#[test]` that executes `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let base = $crate::test_runner::seed_of(concat!(module_path!(), "::", stringify!($name)));
                let mut executed: u32 = 0;
                let mut attempts: u32 = 0;
                // Bounded rejection sampling: assumptions that reject every
                // draw must not spin forever.
                let max_attempts = config.cases.saturating_mul(20).max(100);
                while executed < config.cases && attempts < max_attempts {
                    let mut rng = $crate::test_runner::TestRng::from_seed(
                        base ^ (attempts as u64).wrapping_mul(0x2545_f491_4f6c_dd1d),
                    );
                    attempts += 1;
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $(
                            let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                        )+
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        Ok(()) => executed += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_runner::TestRng::from_seed(7);
        let mut b = crate::test_runner::TestRng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(-2.0f32..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = Strategy::sample(&(1u8..=255), &mut rng);
            assert!(i >= 1);
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::test_runner::TestRng::from_seed(2);
        for _ in 0..200 {
            let v = Strategy::sample(&prop::collection::vec(0usize..8, 1..12), &mut rng);
            assert!(!v.is_empty() && v.len() < 12);
            assert!(v.iter().all(|&x| x < 8));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: sampling, assume, and assertions all compose.
        #[test]
        fn macro_end_to_end(a in 0usize..100, b in 0usize..100, flag in any::<bool>()) {
            prop_assume!(a != b);
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(lo < hi, "lo {lo} hi {hi}");
            prop_assert_eq!(lo.min(hi), lo);
            let _ = flag;
        }
    }
}
