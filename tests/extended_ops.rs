//! Integration coverage for the extended operator set (`Pad`, `ReduceMean`)
//! through ONNX import, simplification, and execution — the shapes real
//! exporters emit.

use orpheus::Engine;
use orpheus_graph::{passes::PassManager, AttrValue, Attributes, Graph, Node, OpKind, ValueInfo};
use orpheus_ops::conv::{Conv2d, Conv2dParams, ConvAlgorithm};
use orpheus_tensor::{allclose, Tensor};
use orpheus_threads::ThreadPool;

/// The graph shape PyTorch exports for "same" padding:
/// `Pad → Conv(pads=0) → Relu → ReduceMean(axes=[2,3]) → Flatten → Gemm`.
fn exporter_style_graph() -> Graph {
    let mut g = Graph::new("exporter-style");
    g.add_input(ValueInfo::new("x", &[1, 3, 8, 8]));
    g.add_initializer(
        "w",
        Tensor::from_fn(&[8, 3, 3, 3], |i| ((i % 11) as f32 - 5.0) * 0.05),
    );
    g.add_initializer(
        "fc_w",
        Tensor::from_fn(&[4, 8], |i| ((i % 7) as f32 - 3.0) * 0.1),
    );
    g.add_node(
        Node::new("pad", OpKind::Pad, &["x"], &["xp"]).with_attrs(
            Attributes::new()
                .with("pads", AttrValue::Ints(vec![0, 0, 1, 1, 0, 0, 1, 1]))
                .with("value", AttrValue::Float(0.0)),
        ),
    );
    g.add_node(
        Node::new("conv", OpKind::Conv, &["xp", "w"], &["c"]).with_attrs(
            Attributes::new()
                .with("kernel_shape", AttrValue::Ints(vec![3, 3]))
                .with("pads", AttrValue::Ints(vec![0, 0, 0, 0])),
        ),
    );
    g.add_node(Node::new("act", OpKind::Relu, &["c"], &["a"]));
    g.add_node(
        Node::new("gap", OpKind::ReduceMean, &["a"], &["m"]).with_attrs(
            Attributes::new()
                .with("axes", AttrValue::Ints(vec![2, 3]))
                .with("keepdims", AttrValue::Int(1)),
        ),
    );
    g.add_node(Node::new("flat", OpKind::Flatten, &["m"], &["f"]));
    g.add_node(Node::new("fc", OpKind::Gemm, &["f", "fc_w"], &["y"]));
    g.add_output("y");
    g
}

#[test]
fn pad_fold_absorbs_exporter_padding() {
    let mut g = exporter_style_graph();
    PassManager::standard().run_to_fixpoint(&mut g).unwrap();
    assert!(
        !g.nodes().iter().any(|n| n.op == OpKind::Pad),
        "Pad should be folded into the conv:\n{}",
        g.render()
    );
    let conv = g.nodes().iter().find(|n| n.op == OpKind::Conv).unwrap();
    assert_eq!(conv.attrs.ints_or("pads", &[]), vec![1, 1, 1, 1]);
}

#[test]
fn folded_and_unfolded_graphs_agree() {
    let g = exporter_style_graph();
    let input = Tensor::from_fn(&[1, 3, 8, 8], |i| ((i * 13 % 31) as f32 / 31.0) - 0.4);
    let plain = Engine::builder()
        .threads(1)
        .simplification(false)
        .build()
        .unwrap()
        .load(g.clone())
        .unwrap();
    let simplified = Engine::builder()
        .threads(1)
        .build()
        .unwrap()
        .load(g)
        .unwrap();
    assert!(simplified.num_layers() < plain.num_layers());
    let a = plain.run(&input).unwrap();
    let b = simplified.run(&input).unwrap();
    let r = allclose(&b, &a, 1e-4, 1e-5);
    assert!(r.ok, "pad folding changed results: {r:?}");
}

#[test]
fn survives_onnx_round_trip() {
    let g = exporter_style_graph();
    let bytes = orpheus_onnx::export_model(&g).unwrap();
    let engine = Engine::builder().threads(1).build().unwrap();
    let input = Tensor::from_fn(&[1, 3, 8, 8], |i| (i % 9) as f32 * 0.1);
    let via_onnx = engine.load_onnx(&bytes).unwrap().run(&input).unwrap();
    let direct = engine.load(g).unwrap().run(&input).unwrap();
    let r = allclose(&via_onnx, &direct, 1e-4, 1e-5);
    assert!(r.ok, "round trip changed results: {r:?}");
}

#[test]
fn manual_pad_conv_equals_padded_conv() {
    // pad_constant + unpadded conv == padded conv, at the operator level.
    let params_padded = Conv2dParams::square(2, 4, 3).with_padding(1, 1);
    let params_plain = Conv2dParams::square(2, 4, 3);
    let weight = Tensor::from_fn(&params_padded.weight_dims(), |i| {
        ((i % 5) as f32 - 2.0) * 0.1
    });
    let input = Tensor::from_fn(&[1, 2, 6, 6], |i| ((i * 7 % 13) as f32 - 6.0) * 0.2);
    let pool = ThreadPool::single();

    let direct = Conv2d::new(params_padded, weight.clone(), None, ConvAlgorithm::Direct)
        .unwrap()
        .run(&input, &pool)
        .unwrap();
    let padded_input =
        orpheus_ops::pad::pad_constant(&input, &[0, 0, 1, 1], &[0, 0, 1, 1], 0.0).unwrap();
    let via_pad = Conv2d::new(params_plain, weight, None, ConvAlgorithm::Direct)
        .unwrap()
        .run(&padded_input, &pool)
        .unwrap();
    assert_eq!(direct, via_pad);
}

#[test]
fn reduce_mean_without_keepdims_feeds_dense() {
    // keepdims=0 produces [n, c] directly, skipping the Flatten.
    let mut g = Graph::new("rm");
    g.add_input(ValueInfo::new("x", &[1, 6, 4, 4]));
    g.add_initializer("fc_w", Tensor::ones(&[2, 6]));
    g.add_node(
        Node::new("gap", OpKind::ReduceMean, &["x"], &["m"]).with_attrs(
            Attributes::new()
                .with("axes", AttrValue::Ints(vec![2, 3]))
                .with("keepdims", AttrValue::Int(0)),
        ),
    );
    g.add_node(Node::new("fc", OpKind::Gemm, &["m", "fc_w"], &["y"]));
    g.add_output("y");
    let out = Engine::builder()
        .threads(1)
        .build()
        .unwrap()
        .load(g)
        .unwrap()
        .run(&Tensor::ones(&[1, 6, 4, 4]))
        .unwrap();
    assert_eq!(out.dims(), &[1, 2]);
    assert_eq!(out.as_slice(), &[6.0, 6.0]);
}
