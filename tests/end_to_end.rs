//! End-to-end integration: every paper model runs through the full
//! pipeline (zoo → ONNX export → import → simplify → lower → execute) and
//! produces a sane classification output.

use orpheus::{Engine, Personality};
use orpheus_models::{build_model_with_input, ModelKind};
use orpheus_onnx::{export_model, import_model};
use orpheus_tensor::Tensor;

/// Reduced input sizes so all five models run in a debug-build test.
fn test_hw(model: ModelKind) -> usize {
    model.min_input_hw()
}

fn synthetic_image(c: usize, hw: usize) -> Tensor {
    Tensor::from_fn(&[1, c, hw, hw], |i| ((i * 37 % 97) as f32 / 97.0) - 0.5)
}

#[test]
fn all_five_paper_models_classify() {
    for model in ModelKind::FIGURE2 {
        let hw = test_hw(model);
        let graph = build_model_with_input(model, hw, hw);
        let engine = Engine::builder().threads(1).build().expect("engine");
        let network = engine
            .load(graph)
            .unwrap_or_else(|e| panic!("{model}: {e}"));
        let out = network
            .run(&synthetic_image(3, hw))
            .unwrap_or_else(|e| panic!("{model}: {e}"));
        assert_eq!(out.dims(), &[1, model.num_classes()], "{model} output dims");
        assert!(
            out.as_slice().iter().all(|x| x.is_finite()),
            "{model} produced non-finite outputs"
        );
        // Softmax head: probabilities sum to 1.
        assert!(
            (out.sum() - 1.0).abs() < 1e-3,
            "{model} probabilities sum to {}",
            out.sum()
        );
    }
}

#[test]
fn onnx_round_trip_preserves_inference_for_every_model() {
    for model in ModelKind::FIGURE2 {
        let hw = test_hw(model);
        let graph = build_model_with_input(model, hw, hw);
        let bytes = export_model(&graph).unwrap_or_else(|e| panic!("{model}: export: {e}"));
        let reimported = import_model(&bytes).unwrap_or_else(|e| panic!("{model}: import: {e}"));
        assert_eq!(
            reimported.nodes().len(),
            graph.nodes().len(),
            "{model} nodes"
        );

        let engine = Engine::builder().threads(1).build().expect("engine");
        let input = synthetic_image(3, hw);
        let direct = engine.load(graph).unwrap().run(&input).unwrap();
        let via_onnx = engine.load(reimported).unwrap().run(&input).unwrap();
        let r = orpheus_tensor::allclose(&via_onnx, &direct, 1e-4, 1e-5);
        assert!(r.ok, "{model}: onnx round trip changed outputs: {r:?}");
    }
}

#[test]
fn every_personality_agrees_on_lenet() {
    let graph = build_model_with_input(ModelKind::LeNet5, 28, 28);
    let input = synthetic_image(1, 28);
    let reference = Engine::builder()
        .personality(Personality::Orpheus)
        .threads(1)
        .build()
        .unwrap()
        .load(graph.clone())
        .unwrap()
        .run(&input)
        .unwrap();
    for personality in [
        Personality::TvmSim,
        Personality::PytorchSim,
        Personality::DarknetSim,
    ] {
        let out = Engine::builder()
            .personality(personality)
            .threads(1)
            .build()
            .unwrap()
            .load(graph.clone())
            .unwrap()
            .run(&input)
            .unwrap();
        let r = orpheus_tensor::allclose(&out, &reference, 1e-3, 1e-4);
        assert!(r.ok, "{personality} disagrees with orpheus: {r:?}");
    }
}

#[test]
fn simplification_is_semantically_invisible_on_all_models() {
    for model in ModelKind::FIGURE2 {
        let hw = test_hw(model);
        let graph = build_model_with_input(model, hw, hw);
        let input = synthetic_image(3, hw);
        let plain = Engine::builder()
            .threads(1)
            .simplification(false)
            .build()
            .unwrap()
            .load(graph.clone())
            .unwrap();
        let simplified = Engine::builder()
            .threads(1)
            .build()
            .unwrap()
            .load(graph)
            .unwrap();
        assert!(
            simplified.num_layers() < plain.num_layers(),
            "{model}: simplification did not remove layers ({} vs {})",
            simplified.num_layers(),
            plain.num_layers()
        );
        let a = plain.run(&input).unwrap();
        let b = simplified.run(&input).unwrap();
        let r = orpheus_tensor::allclose(&b, &a, 5e-3, 1e-4);
        assert!(r.ok, "{model}: simplification changed outputs: {r:?}");
    }
}

#[test]
fn repeated_runs_are_deterministic() {
    let graph = build_model_with_input(ModelKind::TinyCnn, 8, 8);
    let network = Engine::builder()
        .threads(1)
        .build()
        .unwrap()
        .load(graph)
        .unwrap();
    let input = synthetic_image(3, 8);
    let a = network.run(&input).unwrap();
    let b = network.run(&input).unwrap();
    assert_eq!(a, b, "same input must give bitwise-identical output");
}

#[test]
fn profile_accounts_for_total_time() {
    let graph = build_model_with_input(ModelKind::LeNet5, 28, 28);
    let network = Engine::builder()
        .threads(1)
        .build()
        .unwrap()
        .load(graph)
        .unwrap();
    let (_, profile) = network.run_profiled(&synthetic_image(1, 28)).unwrap();
    let layer_sum: f64 = profile
        .timings
        .iter()
        .map(|t| t.duration.as_secs_f64())
        .sum();
    let total = profile.total.as_secs_f64();
    assert!(layer_sum <= total, "layer times exceed wall clock");
    assert!(
        layer_sum > total * 0.5,
        "executor overhead implausibly high: {layer_sum} vs {total}"
    );
}
