//! Engine-level property tests: the whole pipeline (graph → ONNX round trip
//! → simplification → lowering → execution) must agree with the raw operator
//! library on randomly drawn layer configurations, under every personality.

use orpheus::{Engine, Personality};
use orpheus_graph::{AttrValue, Attributes, Graph, Node, OpKind, ValueInfo};
use orpheus_ops::conv::{Conv2d, Conv2dParams, ConvAlgorithm};
use orpheus_tensor::{allclose, Tensor};
use orpheus_threads::ThreadPool;
use proptest::prelude::*;

fn pseudo(n: usize, seed: u64) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let x = (i as u64 ^ seed).wrapping_mul(0x9e3779b97f4a7c15);
            ((x >> 34) as f32 / (1u64 << 30) as f32) - 1.0
        })
        .collect()
}

/// Builds a single-conv graph with the given geometry.
fn conv_graph(params: &Conv2dParams, h: usize, w: usize, seed: u64) -> (Graph, Tensor, Tensor) {
    let weight = Tensor::from_vec(
        pseudo(params.weight_dims().iter().product(), seed ^ 0xaa),
        &params.weight_dims(),
    )
    .expect("weight dims");
    let input = Tensor::from_vec(
        pseudo(params.in_channels * h * w, seed),
        &[1, params.in_channels, h, w],
    )
    .expect("input dims");
    let mut g = Graph::new("prop");
    g.add_input(ValueInfo::new("x", &[1, params.in_channels, h, w]));
    g.add_initializer("w", weight.clone());
    g.add_node(
        Node::new("conv", OpKind::Conv, &["x", "w"], &["y"]).with_attrs(
            Attributes::new()
                .with(
                    "kernel_shape",
                    AttrValue::Ints(vec![params.kernel_h as i64, params.kernel_w as i64]),
                )
                .with(
                    "strides",
                    AttrValue::Ints(vec![params.stride_h as i64, params.stride_w as i64]),
                )
                .with(
                    "pads",
                    AttrValue::Ints(vec![
                        params.pad_h as i64,
                        params.pad_w as i64,
                        params.pad_h as i64,
                        params.pad_w as i64,
                    ]),
                )
                .with("group", AttrValue::Int(params.groups as i64)),
        ),
    );
    g.add_output("y");
    (g, input, weight)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A random convolution executed through every personality's full
    /// pipeline (including ONNX round trip) matches the reference operator.
    #[test]
    fn pipeline_matches_reference_conv(
        ci in 1usize..5, co in 1usize..9,
        k in 1usize..4, s in 1usize..3, pad in 0usize..2,
        h in 4usize..9, seed in any::<u64>(),
        depthwise in any::<bool>(),
    ) {
        prop_assume!(h + 2 * pad >= k);
        let params = if depthwise {
            Conv2dParams::depthwise(ci.max(2), k)
                .with_stride(s, s)
                .with_padding(pad, pad)
        } else {
            Conv2dParams::square(ci, co, k)
                .with_stride(s, s)
                .with_padding(pad, pad)
        };
        let (graph, input, weight) = conv_graph(&params, h, h, seed);
        let reference = Conv2d::new(params, weight, None, ConvAlgorithm::Direct)
            .expect("reference conv")
            .run(&input, &ThreadPool::single())
            .expect("reference runs");

        let onnx = orpheus_onnx::export_model(&graph).expect("export");
        for personality in [
            Personality::Orpheus,
            Personality::TvmSim,
            Personality::PytorchSim,
            Personality::DarknetSim,
        ] {
            let engine = Engine::builder().personality(personality).threads(1).build().expect("engine");
            let network = engine.load_onnx(&onnx).expect("load");
            let got = network.run(&input).expect("run");
            let want = reference.reshaped(got.dims()).expect("same element count");
            let r = allclose(&got, &want, 1e-3, 1e-4);
            prop_assert!(r.ok, "{personality} disagrees: {r:?}");
        }
    }

    /// Auto-tune and heuristic policies are semantically identical to the
    /// fixed default on random geometry.
    #[test]
    fn policies_agree_semantically(
        ci in 1usize..4, co in 1usize..8, k in 1usize..4,
        h in 4usize..8, seed in any::<u64>(),
    ) {
        prop_assume!(h >= k);
        let params = Conv2dParams::square(ci, co, k);
        let (graph, input, _) = conv_graph(&params, h, h, seed);
        let reference = Engine::builder().threads(1).build()
            .expect("engine")
            .load(graph.clone())
            .expect("load")
            .run(&input)
            .expect("run");
        for policy in [
            orpheus::SelectionPolicy::Heuristic,
            orpheus::SelectionPolicy::AutoTune { trials: 1 },
        ] {
            let got = Engine::builder()
                .threads(1)
                .policy(policy)
                .build()
                .expect("engine")
                .load(graph.clone())
                .expect("load")
                .run(&input)
                .expect("run");
            let r = allclose(&got, &reference, 1e-3, 1e-4);
            prop_assert!(r.ok, "{policy:?} disagrees: {r:?}");
        }
    }
}
