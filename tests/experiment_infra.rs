//! Integration tests for the experiment infrastructure: the Figure 2 /
//! Table I harness must produce structurally correct results. (Performance
//! *relationships* are asserted in release-mode benches, not debug tests.)

use orpheus::Personality;
use orpheus_cli::{
    run_depthwise_ablation, run_figure2, run_simplify_ablation, run_table1, Figure2Config,
    InputScale,
};
use orpheus_models::ModelKind;

#[test]
fn figure2_has_all_cells_and_exclusions() {
    let config = Figure2Config {
        scale: InputScale::Quick,
        repeats: 1,
        threads: 1,
        models: vec![ModelKind::Wrn40_2, ModelKind::ResNet18],
        include_darknet: true,
    };
    let result = run_figure2(&config).unwrap();
    // 2 models x 3 frameworks + darknet on ResNet-18 only.
    assert_eq!(result.measurements.len(), 7);
    assert!(result
        .cell(ModelKind::ResNet18, Personality::DarknetSim)
        .is_some());
    assert!(result
        .cell(ModelKind::Wrn40_2, Personality::DarknetSim)
        .is_none());
    // TF-Lite exclusion note present (on multi-core hosts) or parity note.
    assert!(result
        .exclusions
        .iter()
        .any(|(p, _)| *p == Personality::TfliteSim));
    // All cells positive.
    assert!(result.measurements.iter().all(|m| m.millis > 0.0));
    // Render includes a winner column.
    assert!(result.render().contains("winner"));
}

#[test]
fn table1_reproduces_paper_ratings() {
    let text = run_table1(false).unwrap();
    // The paper's Table I: Orpheus rates 3 on all criteria.
    let orpheus_col: Vec<&str> = text
        .lines()
        .skip(1)
        .map(|l| l.split_whitespace().last().unwrap())
        .collect();
    assert_eq!(orpheus_col, vec!["3"; 5], "table text:\n{text}");
}

#[test]
fn depthwise_ablation_reports_slowdown() {
    let report = run_depthwise_ablation(64, 1).unwrap();
    assert!(report.orpheus_depthwise_ms > 0.0);
    assert!(report.pytorch_depthwise_ms > 0.0);
    // Even in debug builds the generic grouped-GEMM path must not be faster
    // than the dedicated kernel.
    assert!(
        report.slowdown > 1.0,
        "generic depthwise path unexpectedly fast: {report:?}"
    );
}

#[test]
fn simplify_ablation_counts_layers() {
    let report = run_simplify_ablation(ModelKind::Wrn40_2, 8, 1).unwrap();
    // WRN-40-2: every conv+BN pair folds, every relu fuses.
    assert!(report.layers_simplified < report.layers_plain / 2);
}
