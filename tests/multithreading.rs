//! Thread-count invariance: outputs must not depend on the pool size, and
//! the TF-Lite thread-policy reproduction must hold.

use orpheus::{Engine, Personality};
use orpheus_models::{build_model_with_input, ModelKind};
use orpheus_tensor::Tensor;
use orpheus_threads::ThreadPool;

#[test]
fn outputs_identical_across_thread_counts() {
    let graph = build_model_with_input(ModelKind::Wrn40_2, 8, 8);
    let input = Tensor::from_fn(&[1, 3, 8, 8], |i| ((i * 7 % 23) as f32 / 23.0) - 0.5);
    let reference = Engine::builder()
        .threads(1)
        .build()
        .unwrap()
        .load(graph.clone())
        .unwrap()
        .run(&input)
        .unwrap();
    for threads in [2, 4] {
        let out = Engine::builder()
            .threads(threads)
            .build()
            .unwrap()
            .load(graph.clone())
            .unwrap()
            .run(&input)
            .unwrap();
        let r = orpheus_tensor::allclose(&out, &reference, 1e-5, 1e-6);
        assert!(r.ok, "threads={threads} changed the result: {r:?}");
    }
}

#[test]
fn tflite_personality_thread_gate() {
    let max = ThreadPool::max_hardware().num_threads();
    // Accepts exactly the hardware maximum...
    assert!(Engine::builder()
        .personality(Personality::TfliteSim)
        .threads(max)
        .build()
        .is_ok());
    // ...and rejects anything else (this is why the paper excludes TF-Lite
    // from its single-thread Figure 2).
    let not_max = if max == 1 { 2 } else { 1 };
    let err = Engine::builder()
        .personality(Personality::TfliteSim)
        .threads(not_max)
        .build()
        .unwrap_err();
    assert!(
        err.to_string().contains("maximum number of threads"),
        "unexpected message: {err}"
    );
}

#[test]
fn tflite_runs_at_max_threads() {
    let max = ThreadPool::max_hardware().num_threads();
    let engine = Engine::builder()
        .personality(Personality::TfliteSim)
        .threads(max)
        .build()
        .unwrap();
    let network = engine
        .load(build_model_with_input(ModelKind::TinyCnn, 8, 8))
        .unwrap();
    let out = network.run(&Tensor::ones(&[1, 3, 8, 8])).unwrap();
    assert_eq!(out.dims(), &[1, 4]);
}
